"""1-D piecewise linear interpolation (Sec. 4.2).

PrIU linearizes the non-linear part of the logistic-regression update rule,

    ``f(x) = 1 - 1 / (1 + e^(-x))``  (the sigmoid complement),

by replacing ``f`` with a piecewise-linear interpolant ``s`` built on a
uniform grid over ``[-a, a]``; outside the interval ``s`` is the constant
``f(±a)`` (``f`` saturates there).  The coefficients ``(a_{i,(t)}, b_{i,(t)})``
of the sub-interval containing ``y_i · w^(t)ᵀ x_i`` are captured during
training and reused during incremental updates.

The paper uses ``a = 20`` and ``10^6`` sub-intervals; both are configurable
here (the error bound of Theorem 4 is ``O((Δx)²)``, so a coarser default grid
already puts the linearization error far below the model distances measured
in the evaluation).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def sigmoid_complement(x: np.ndarray) -> np.ndarray:
    """``f(x) = 1 - sigmoid(x)``, the non-linearity of Equation 6."""
    return sigmoid(-np.asarray(x, dtype=float))


class PiecewiseLinearInterpolator:
    """Uniform-grid piecewise-linear interpolant with O(1) coefficient lookup.

    Parameters
    ----------
    func:
        The function to interpolate (vectorized over numpy arrays).
    half_width:
        ``a``: the interpolation interval is ``[-a, a]``.
    n_intervals:
        Number of equal sub-intervals the interval is partitioned into.
    """

    def __init__(
        self,
        func: Callable[[np.ndarray], np.ndarray],
        half_width: float = 20.0,
        n_intervals: int = 100_000,
    ) -> None:
        if half_width <= 0:
            raise ValueError("half_width must be positive")
        if n_intervals < 1:
            raise ValueError("need at least one sub-interval")
        self.func = func
        self.half_width = float(half_width)
        self.n_intervals = int(n_intervals)
        self.grid = np.linspace(-self.half_width, self.half_width, n_intervals + 1)
        self.values = np.asarray(func(self.grid), dtype=float)
        self.delta = 2.0 * self.half_width / n_intervals
        # Per-interval slope/intercept: s(x) = slope_j * x + intercept_j.
        self._slopes = np.diff(self.values) / self.delta
        self._intercepts = self.values[:-1] - self._slopes * self.grid[:-1]
        # Saturation constants outside [-a, a].
        self._low_value = float(self.values[0])
        self._high_value = float(self.values[-1])

    # ------------------------------------------------------------- lookups
    def coefficients(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Slopes and intercepts of the sub-intervals containing ``x``.

        Outside the grid the interpolant is constant: slope 0, intercept the
        saturated value.  Shapes follow the input.
        """
        x = np.asarray(x, dtype=float)
        idx = np.floor((x + self.half_width) / self.delta).astype(int)
        idx = np.clip(idx, 0, self.n_intervals - 1)
        slopes = self._slopes[idx]
        intercepts = self._intercepts[idx]
        below = x < -self.half_width
        above = x > self.half_width
        if below.any():
            slopes = np.where(below, 0.0, slopes)
            intercepts = np.where(below, self._low_value, intercepts)
        if above.any():
            slopes = np.where(above, 0.0, slopes)
            intercepts = np.where(above, self._high_value, intercepts)
        return slopes, intercepts

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the interpolant ``s(x)``."""
        slopes, intercepts = self.coefficients(x)
        return slopes * np.asarray(x, dtype=float) + intercepts

    # -------------------------------------------------------------- bounds
    def max_error_bound(self, second_derivative_bound: float) -> float:
        """Theorem 4 / Lemma 9 bound: ``|f - s| <= Δx²/8 · max|f''|``."""
        return (self.delta**2) / 8.0 * second_derivative_bound

    def empirical_max_error(self, n_probes: int = 10_001) -> float:
        """Measured sup-distance between ``f`` and ``s`` on a dense probe grid."""
        probes = np.linspace(-self.half_width, self.half_width, n_probes)
        return float(np.max(np.abs(self.func(probes) - self(probes))))


def sigmoid_complement_interpolator(
    half_width: float = 20.0, n_intervals: int = 100_000
) -> PiecewiseLinearInterpolator:
    """The interpolator PrIU uses for binary logistic regression."""
    return PiecewiseLinearInterpolator(
        sigmoid_complement, half_width=half_width, n_intervals=n_intervals
    )


# max |f''| for f = 1 - sigmoid: f'' = -s''(x); |sigmoid''| peaks at
# 1/(6*sqrt(3)) ≈ 0.0962 at x = ±log(2±sqrt(3)).
SIGMOID_SECOND_DERIVATIVE_BOUND = 1.0 / (6.0 * np.sqrt(3.0))
