"""Truncated SVD of provenance summaries (Sec. 5.1/5.3, Theorems 6 and 8).

PrIU caches one ``m × m`` matrix per iteration (``Σ x_i x_iᵀ`` for linear
regression, ``Σ a_i x_i x_iᵀ`` for logistic).  Its rank is at most the
mini-batch size ``B``, so when ``B < m`` the summary compresses losslessly to
rank ``B`` — and lossily to rank ``r ≪ B`` while keeping

    ``‖U_{1..r} S_{1..r} V_{1..r}ᵀ‖₂ / ‖U S Vᵀ‖₂ ≥ 1 - ε``

(the paper's Theorem 6 criterion; because the truncated matrix keeps the top
singular value, the criterion is equivalently enforced here through the
*relative tail*: we keep the smallest ``r`` such that ``σ_{r+1} ≤ ε σ_1``,
which bounds the 2-norm reconstruction error by ``ε ‖A‖₂`` and hence the
parameter deviation by ``O(ε)``).

The cached factors are ``P = U_{1..r} S_{1..r}`` and ``V_{1..r}``, each
``m × r``; applying the summary to a vector costs ``O(rm)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TruncatedSummary:
    """The cached pair ``(P, V)`` with ``A ≈ P Vᵀ``."""

    left: np.ndarray  # P = U_{1..r} S_{1..r},  shape (m, r)
    right: np.ndarray  # V_{1..r},              shape (m, r)

    @property
    def rank(self) -> int:
        return self.left.shape[1]

    @property
    def n_features(self) -> int:
        return self.left.shape[0]

    def apply(self, vector: np.ndarray) -> np.ndarray:
        """``(P Vᵀ) w`` via two matrix–vector products: O(rm)."""
        return self.left @ (self.right.T @ vector)

    def reconstruct(self) -> np.ndarray:
        """Materialize ``P Vᵀ`` (testing/diagnostics only: O(rm²))."""
        return self.left @ self.right.T

    def nbytes(self) -> int:
        """Memory held by the cached factors."""
        return self.left.nbytes + self.right.nbytes


def select_rank(singular_values: np.ndarray, epsilon: float) -> int:
    """Smallest ``r >= 1`` with ``σ_{r+1} <= ε σ_1`` (tail-ratio criterion)."""
    s = np.asarray(singular_values, dtype=float)
    if s.size == 0 or s[0] <= 0.0:
        return 1
    tail_ok = s <= epsilon * s[0]
    # Position of the first singular value small enough to drop.
    drop_from = int(np.argmax(tail_ok)) if tail_ok.any() else s.size
    return max(1, drop_from)


def truncate_summary(
    matrix: np.ndarray,
    epsilon: float = 0.01,
    max_rank: int | None = None,
    symmetric: bool = False,
) -> TruncatedSummary:
    """Compress a dense summary matrix to its ε-rank truncated SVD factors.

    Provenance summaries are symmetric (``Σ w_i x_i x_iᵀ``); passing
    ``symmetric=True`` uses the ~3× cheaper eigendecomposition, with the
    eigenvalue signs folded into the left factor.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("provenance summaries are square m×m matrices")
    if symmetric:
        evals, evecs = np.linalg.eigh(0.5 * (matrix + matrix.T))
        order = np.argsort(-np.abs(evals))
        evals = evals[order]
        evecs = evecs[:, order]
        rank = select_rank(np.abs(evals), epsilon)
        if max_rank is not None:
            rank = min(rank, max_rank)
        rank = max(1, min(rank, evals.size))
        return TruncatedSummary(
            left=evecs[:, :rank] * evals[:rank], right=evecs[:, :rank]
        )
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    rank = select_rank(s, epsilon)
    if max_rank is not None:
        rank = min(rank, max_rank)
    rank = max(1, min(rank, s.size))
    return TruncatedSummary(left=u[:, :rank] * s[:rank], right=vt[:rank].T)


def truncate_from_samples(
    rows: np.ndarray,
    weights: np.ndarray | None = None,
    epsilon: float = 0.01,
    max_rank: int | None = None,
) -> TruncatedSummary:
    """Truncated factors of ``Σ w_i x_i x_iᵀ`` without forming the m×m matrix.

    Uses the thin SVD of the ``B × m`` (weighted) sample block: if
    ``X_B = U S Vᵀ`` then ``X_Bᵀ diag(sign) X_B``'s factors come from ``V`` and
    ``S²``.  Negative weights (logistic slopes are negative) are handled by
    folding ``|w|^(1/2)`` into the rows and the sign into the left factor.
    Cost is ``O(B m min(B, m))`` — cheaper than the ``O(m³)`` dense SVD when
    ``B ≪ m``, which is exactly the regime PrIU compresses.
    """
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2:
        raise ValueError("rows must be a B×m block")
    if weights is None:
        weights = np.ones(rows.shape[0])
    weights = np.asarray(weights, dtype=float).ravel()
    if weights.shape[0] != rows.shape[0]:
        raise ValueError("one weight per row is required")
    if rows.shape[0] >= rows.shape[1]:
        # More rows than dimensions: the m×m gram is the cheaper route.
        dense = rows.T @ (rows * weights[:, None])
        return truncate_summary(
            dense, epsilon=epsilon, max_rank=max_rank, symmetric=True
        )
    scaled = rows * np.sqrt(np.abs(weights))[:, None]
    signs = np.sign(weights)
    # A = rowsᵀ diag(w) rows = scaledᵀ diag(sign) scaled.
    u, s, vt = np.linalg.svd(scaled, full_matrices=False)
    # A = V S (Uᵀ diag(sign) U) S Vᵀ; define B_mid = Uᵀ diag(sign) U (r0×r0).
    mid = (u.T * signs) @ u
    core = (s[:, None] * mid) * s[None, :]
    # Eigen-decompose the small symmetric core to re-diagonalize.
    evals, evecs = np.linalg.eigh(core)
    order = np.argsort(-np.abs(evals))
    evals = evals[order]
    evecs = evecs[:, order]
    magnitudes = np.abs(evals)
    rank = select_rank(magnitudes, epsilon)
    if max_rank is not None:
        rank = min(rank, max_rank)
    rank = max(1, min(rank, magnitudes.size))
    basis = vt.T @ evecs[:, :rank]  # m × r, orthonormal columns
    left = basis * evals[:rank]
    return TruncatedSummary(left=left, right=basis)


@dataclass(frozen=True)
class RetruncationResult:
    """Receipt of one :func:`retruncate_summary` call.

    ``error_bound`` is the *exact* 2-norm distance between the widened
    operator and its re-truncated replacement — the largest singular value
    dropped (``0.0`` when nothing was dropped), so
    ``‖A_wide − A_retrunc‖₂ = error_bound ≤ error_bound_relative · ‖A‖₂``.
    Maintenance surfaces the worst bound across all re-truncated summaries
    so callers can verify the answer contract they are trading for memory.
    """

    summary: TruncatedSummary
    rank_before: int
    rank_after: int
    error_bound: float  # ‖dropped tail‖₂ = largest dropped singular value
    spectral_norm: float  # σ₁ of the widened operator
    method: str = "qr"  # "qr" (full thin-QR) | "incremental"

    @property
    def error_bound_relative(self) -> float:
        """``error_bound / σ₁`` (0.0 for a zero operator)."""
        if self.spectral_norm == 0.0:
            return 0.0
        return self.error_bound / self.spectral_norm


def incremental_retruncation_wins(retained: int, appended: int) -> bool:
    """The crossover rule :func:`retruncate_summary` applies for ``appended``.

    The incremental path costs ``O(m r d + (r+d)³)`` against the full
    thin-QR's ``O(m (r+d)² )`` — it wins while the appended column count
    ``d`` is small next to the retained rank ``r``.  The ``2d ≤ r`` rule
    keeps a comfortable margin (QR of an ``m × d`` residual plus two
    skinny GEMMs versus re-orthogonalizing all ``r + d`` columns), and a
    degenerate bookkeeping state (``d ≥`` the factor width, ``d = 0``)
    always falls back to the full path.
    """
    return 0 < appended and appended * 2 <= retained


def _retruncate_incremental(
    left: np.ndarray,
    right: np.ndarray,
    retained: int,
    epsilon: float | None,
    max_rank: int | None,
) -> RetruncationResult:
    """Fold ``d`` appended correction columns into the existing factors.

    Exploits the invariant that every (re)truncation output has
    ``P₀ = Q_L diag(s)`` with orthonormal ``Q_L`` and orthonormal ``V₀``
    (true for :func:`truncate_summary`, :func:`truncate_from_samples`
    and :func:`retruncate_summary` itself), so only the ``d`` appended
    columns need orthogonalizing: one Gram–Schmidt pass against the
    retained basis (repeated once, the classical twice-is-enough
    refinement) plus a thin QR of the ``m × d`` residual on each side,
    then the SVD of the small ``(r+d) × (r+d)`` core

        ``K = [[diag(s) + X Yᵀ, X R_vᵀ], [R_p Yᵀ, R_p R_vᵀ]]``

    re-diagonalizes the widened operator in ``O(m r d + (r+d)³)`` —
    never touching the ``m × r`` retained block with a QR again.
    """
    prior_left = left[:, :retained]
    prior_right = right[:, :retained]
    appended_left = left[:, retained:]
    appended_right = right[:, retained:]
    norms = np.linalg.norm(prior_left, axis=0)
    # Zero columns (a zero-operator summary kept as rank 1) contribute
    # nothing; dividing by 1 leaves them zero in the basis.
    safe = np.where(norms > 0.0, norms, 1.0)
    basis_left = prior_left / safe

    def _split(basis, block):
        """``block = basis @ coeffs + ortho @ tri`` with ortho ⟂ basis."""
        coeffs = basis.T @ block
        residual = block - basis @ coeffs
        correction = basis.T @ residual
        residual = residual - basis @ correction
        ortho, tri = np.linalg.qr(residual)
        return coeffs + correction, ortho, tri

    x, q_left, r_left = _split(basis_left, appended_left)
    y, q_right, r_right = _split(prior_right, appended_right)
    r = retained
    d = appended_left.shape[1]
    core = np.empty((r + d, r + d))
    core[:r, :r] = x @ y.T
    core[np.arange(r), np.arange(r)] += norms
    core[:r, r:] = x @ r_right.T
    core[r:, :r] = r_left @ y.T
    core[r:, r:] = r_left @ r_right.T
    u, s, vt = np.linalg.svd(core)
    rank = _select_retruncation_rank(
        s, epsilon, max_rank, left.shape[0], left.shape[1]
    )
    error_bound = float(s[rank]) if rank < s.size else 0.0
    new_left = np.hstack((basis_left, q_left)) @ (u[:, :rank] * s[:rank])
    new_right = np.hstack((prior_right, q_right)) @ vt[:rank].T
    return RetruncationResult(
        summary=TruncatedSummary(left=new_left, right=new_right),
        rank_before=int(left.shape[1]),
        rank_after=rank,
        error_bound=error_bound,
        spectral_norm=float(s[0]) if s.size else 0.0,
        method="incremental",
    )


def _select_retruncation_rank(
    s: np.ndarray,
    epsilon: float | None,
    max_rank: int | None,
    n_features: int,
    width: int,
) -> int:
    """The shared rank rule of both re-truncation paths (see docstring)."""
    if s[0] == 0.0:
        rank = 1  # zero operator: keep one (zero) column, drop the rest
    elif epsilon is None:
        tol = max(n_features, width) * np.finfo(float).eps * s[0]
        rank = max(1, int(np.sum(s > tol)))
    else:
        rank = select_rank(s, epsilon)
    if max_rank is not None:
        rank = min(rank, max_rank)
    return max(1, min(rank, s.size))


def retruncate_summary(
    summary: TruncatedSummary,
    epsilon: float | None = None,
    max_rank: int | None = None,
    appended: int | None = None,
) -> RetruncationResult:
    """Re-truncate a widened ``(P, V)`` factor pair without forming ``PVᵀ``.

    Commit compaction appends *exact* rank-Δ correction columns to a
    truncated-SVD summary (:meth:`~repro.core.provenance_store.\
ProvenanceStore.compact`), so after many commits the factors are far wider
    than the operator's numerical rank.  This restores tightness via the
    thin-QR route: with ``P = Q_p R_p`` and ``V = Q_v R_v``,

        ``P Vᵀ = Q_p (R_p R_vᵀ) Q_vᵀ``

    and the SVD of the small ``r × r`` core re-diagonalizes the operator in
    ``O(m r² + r³)`` — never the ``O(m³)`` dense SVD.

    ``epsilon=None`` (the default) drops only the *numerically zero* tail
    (``σ ≤ max(m, r) · eps_float64 · σ₁``): the re-truncated operator equals
    the widened one to machine precision, so replay answers are preserved
    at the commit contract's atol.  Passing an explicit ``epsilon`` applies
    the paper's tail-ratio criterion (:func:`select_rank`) instead —
    smaller factors, answers perturbed by at most ``error_bound`` per
    application (surfaced in the result).

    ``appended`` tells the routine how many of the *trailing* factor
    columns are commit-appended corrections (the count
    :attr:`~repro.core.provenance_store.ProvenanceStore.\
svd_correction_columns` maintains per record).  When few columns arrived
    since the last pass (:func:`incremental_retruncation_wins`), the
    update folds them into the already-orthogonal retained factors
    instead of re-running thin-QR over the full width
    (:func:`_retruncate_incremental`) — same answer to machine precision
    (property-tested at atol 1e-10), ``method="incremental"`` in the
    receipt.  ``appended=None`` (or a count past the crossover) always
    takes the full path.
    """
    left = np.asarray(summary.left, dtype=float)
    right = np.asarray(summary.right, dtype=float)
    if appended is not None:
        retained = int(left.shape[1]) - int(appended)
        if incremental_retruncation_wins(retained, int(appended)):
            return _retruncate_incremental(
                left, right, retained, epsilon, max_rank
            )
    qp, rp = np.linalg.qr(left)
    qv, rv = np.linalg.qr(right)
    core = rp @ rv.T
    u, s, vt = np.linalg.svd(core)
    rank = _select_retruncation_rank(
        s, epsilon, max_rank, left.shape[0], left.shape[1]
    )
    error_bound = float(s[rank]) if rank < s.size else 0.0
    new_left = qp @ (u[:, :rank] * s[:rank])
    new_right = qv @ vt[:rank].T
    return RetruncationResult(
        summary=TruncatedSummary(left=new_left, right=new_right),
        rank_before=int(left.shape[1]),
        rank_after=rank,
        error_bound=error_bound,
        spectral_norm=float(s[0]) if s.size else 0.0,
        method="qr",
    )


def spectral_mass_ratio(full: np.ndarray, summary: TruncatedSummary) -> float:
    """``‖PVᵀ‖₂ / ‖A‖₂`` — the quantity Theorems 6/8 lower-bound by 1-ε."""
    denom = np.linalg.norm(full, 2)
    if denom == 0.0:
        return 1.0
    return float(np.linalg.norm(summary.reconstruct(), 2) / denom)
