"""Truncated SVD of provenance summaries (Sec. 5.1/5.3, Theorems 6 and 8).

PrIU caches one ``m × m`` matrix per iteration (``Σ x_i x_iᵀ`` for linear
regression, ``Σ a_i x_i x_iᵀ`` for logistic).  Its rank is at most the
mini-batch size ``B``, so when ``B < m`` the summary compresses losslessly to
rank ``B`` — and lossily to rank ``r ≪ B`` while keeping

    ``‖U_{1..r} S_{1..r} V_{1..r}ᵀ‖₂ / ‖U S Vᵀ‖₂ ≥ 1 - ε``

(the paper's Theorem 6 criterion; because the truncated matrix keeps the top
singular value, the criterion is equivalently enforced here through the
*relative tail*: we keep the smallest ``r`` such that ``σ_{r+1} ≤ ε σ_1``,
which bounds the 2-norm reconstruction error by ``ε ‖A‖₂`` and hence the
parameter deviation by ``O(ε)``).

The cached factors are ``P = U_{1..r} S_{1..r}`` and ``V_{1..r}``, each
``m × r``; applying the summary to a vector costs ``O(rm)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TruncatedSummary:
    """The cached pair ``(P, V)`` with ``A ≈ P Vᵀ``."""

    left: np.ndarray  # P = U_{1..r} S_{1..r},  shape (m, r)
    right: np.ndarray  # V_{1..r},              shape (m, r)

    @property
    def rank(self) -> int:
        return self.left.shape[1]

    @property
    def n_features(self) -> int:
        return self.left.shape[0]

    def apply(self, vector: np.ndarray) -> np.ndarray:
        """``(P Vᵀ) w`` via two matrix–vector products: O(rm)."""
        return self.left @ (self.right.T @ vector)

    def reconstruct(self) -> np.ndarray:
        """Materialize ``P Vᵀ`` (testing/diagnostics only: O(rm²))."""
        return self.left @ self.right.T

    def nbytes(self) -> int:
        """Memory held by the cached factors."""
        return self.left.nbytes + self.right.nbytes


def select_rank(singular_values: np.ndarray, epsilon: float) -> int:
    """Smallest ``r >= 1`` with ``σ_{r+1} <= ε σ_1`` (tail-ratio criterion)."""
    s = np.asarray(singular_values, dtype=float)
    if s.size == 0 or s[0] <= 0.0:
        return 1
    tail_ok = s <= epsilon * s[0]
    # Position of the first singular value small enough to drop.
    drop_from = int(np.argmax(tail_ok)) if tail_ok.any() else s.size
    return max(1, drop_from)


def truncate_summary(
    matrix: np.ndarray,
    epsilon: float = 0.01,
    max_rank: int | None = None,
    symmetric: bool = False,
) -> TruncatedSummary:
    """Compress a dense summary matrix to its ε-rank truncated SVD factors.

    Provenance summaries are symmetric (``Σ w_i x_i x_iᵀ``); passing
    ``symmetric=True`` uses the ~3× cheaper eigendecomposition, with the
    eigenvalue signs folded into the left factor.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("provenance summaries are square m×m matrices")
    if symmetric:
        evals, evecs = np.linalg.eigh(0.5 * (matrix + matrix.T))
        order = np.argsort(-np.abs(evals))
        evals = evals[order]
        evecs = evecs[:, order]
        rank = select_rank(np.abs(evals), epsilon)
        if max_rank is not None:
            rank = min(rank, max_rank)
        rank = max(1, min(rank, evals.size))
        return TruncatedSummary(
            left=evecs[:, :rank] * evals[:rank], right=evecs[:, :rank]
        )
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    rank = select_rank(s, epsilon)
    if max_rank is not None:
        rank = min(rank, max_rank)
    rank = max(1, min(rank, s.size))
    return TruncatedSummary(left=u[:, :rank] * s[:rank], right=vt[:rank].T)


def truncate_from_samples(
    rows: np.ndarray,
    weights: np.ndarray | None = None,
    epsilon: float = 0.01,
    max_rank: int | None = None,
) -> TruncatedSummary:
    """Truncated factors of ``Σ w_i x_i x_iᵀ`` without forming the m×m matrix.

    Uses the thin SVD of the ``B × m`` (weighted) sample block: if
    ``X_B = U S Vᵀ`` then ``X_Bᵀ diag(sign) X_B``'s factors come from ``V`` and
    ``S²``.  Negative weights (logistic slopes are negative) are handled by
    folding ``|w|^(1/2)`` into the rows and the sign into the left factor.
    Cost is ``O(B m min(B, m))`` — cheaper than the ``O(m³)`` dense SVD when
    ``B ≪ m``, which is exactly the regime PrIU compresses.
    """
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2:
        raise ValueError("rows must be a B×m block")
    if weights is None:
        weights = np.ones(rows.shape[0])
    weights = np.asarray(weights, dtype=float).ravel()
    if weights.shape[0] != rows.shape[0]:
        raise ValueError("one weight per row is required")
    if rows.shape[0] >= rows.shape[1]:
        # More rows than dimensions: the m×m gram is the cheaper route.
        dense = rows.T @ (rows * weights[:, None])
        return truncate_summary(
            dense, epsilon=epsilon, max_rank=max_rank, symmetric=True
        )
    scaled = rows * np.sqrt(np.abs(weights))[:, None]
    signs = np.sign(weights)
    # A = rowsᵀ diag(w) rows = scaledᵀ diag(sign) scaled.
    u, s, vt = np.linalg.svd(scaled, full_matrices=False)
    # A = V S (Uᵀ diag(sign) U) S Vᵀ; define B_mid = Uᵀ diag(sign) U (r0×r0).
    mid = (u.T * signs) @ u
    core = (s[:, None] * mid) * s[None, :]
    # Eigen-decompose the small symmetric core to re-diagonalize.
    evals, evecs = np.linalg.eigh(core)
    order = np.argsort(-np.abs(evals))
    evals = evals[order]
    evecs = evecs[:, order]
    magnitudes = np.abs(evals)
    rank = select_rank(magnitudes, epsilon)
    if max_rank is not None:
        rank = min(rank, max_rank)
    rank = max(1, min(rank, magnitudes.size))
    basis = vt.T @ evecs[:, :rank]  # m × r, orthonormal columns
    left = basis * evals[:rank]
    return TruncatedSummary(left=left, right=basis)


@dataclass(frozen=True)
class RetruncationResult:
    """Receipt of one :func:`retruncate_summary` call.

    ``error_bound`` is the *exact* 2-norm distance between the widened
    operator and its re-truncated replacement — the largest singular value
    dropped (``0.0`` when nothing was dropped), so
    ``‖A_wide − A_retrunc‖₂ = error_bound ≤ error_bound_relative · ‖A‖₂``.
    Maintenance surfaces the worst bound across all re-truncated summaries
    so callers can verify the answer contract they are trading for memory.
    """

    summary: TruncatedSummary
    rank_before: int
    rank_after: int
    error_bound: float  # ‖dropped tail‖₂ = largest dropped singular value
    spectral_norm: float  # σ₁ of the widened operator

    @property
    def error_bound_relative(self) -> float:
        """``error_bound / σ₁`` (0.0 for a zero operator)."""
        if self.spectral_norm == 0.0:
            return 0.0
        return self.error_bound / self.spectral_norm


def retruncate_summary(
    summary: TruncatedSummary,
    epsilon: float | None = None,
    max_rank: int | None = None,
) -> RetruncationResult:
    """Re-truncate a widened ``(P, V)`` factor pair without forming ``PVᵀ``.

    Commit compaction appends *exact* rank-Δ correction columns to a
    truncated-SVD summary (:meth:`~repro.core.provenance_store.\
ProvenanceStore.compact`), so after many commits the factors are far wider
    than the operator's numerical rank.  This restores tightness via the
    thin-QR route: with ``P = Q_p R_p`` and ``V = Q_v R_v``,

        ``P Vᵀ = Q_p (R_p R_vᵀ) Q_vᵀ``

    and the SVD of the small ``r × r`` core re-diagonalizes the operator in
    ``O(m r² + r³)`` — never the ``O(m³)`` dense SVD.

    ``epsilon=None`` (the default) drops only the *numerically zero* tail
    (``σ ≤ max(m, r) · eps_float64 · σ₁``): the re-truncated operator equals
    the widened one to machine precision, so replay answers are preserved
    at the commit contract's atol.  Passing an explicit ``epsilon`` applies
    the paper's tail-ratio criterion (:func:`select_rank`) instead —
    smaller factors, answers perturbed by at most ``error_bound`` per
    application (surfaced in the result).
    """
    left = np.asarray(summary.left, dtype=float)
    right = np.asarray(summary.right, dtype=float)
    qp, rp = np.linalg.qr(left)
    qv, rv = np.linalg.qr(right)
    core = rp @ rv.T
    u, s, vt = np.linalg.svd(core)
    if s[0] == 0.0:
        rank = 1  # zero operator: keep one (zero) column, drop the rest
    elif epsilon is None:
        tol = max(left.shape[0], left.shape[1]) * np.finfo(float).eps * s[0]
        rank = max(1, int(np.sum(s > tol)))
    else:
        rank = select_rank(s, epsilon)
    if max_rank is not None:
        rank = min(rank, max_rank)
    rank = max(1, min(rank, s.size))
    error_bound = float(s[rank]) if rank < s.size else 0.0
    new_left = qp @ (u[:, :rank] * s[:rank])
    new_right = qv @ vt[:rank].T
    return RetruncationResult(
        summary=TruncatedSummary(left=new_left, right=new_right),
        rank_before=int(left.shape[1]),
        rank_after=rank,
        error_bound=error_bound,
        spectral_norm=float(s[0]) if s.size else 0.0,
    )


def spectral_mass_ratio(full: np.ndarray, summary: TruncatedSummary) -> float:
    """``‖PVᵀ‖₂ / ‖A‖₂`` — the quantity Theorems 6/8 lower-bound by 1-ε."""
    denom = np.linalg.norm(full, 2)
    if denom == 0.0:
        return 1.0
    return float(np.linalg.norm(summary.reconstruct(), 2) / denom)
