"""Error-bound diagnostics: turning the paper's theorems into numbers.

A downstream user of PrIU wants to know, *before* trusting an incremental
update, how far it can be from the retrained model.  This module evaluates
the constants that appear in the bounds of Theorems 4-9 for a concrete
fitted trainer:

* linearization term       ``O((Δx)²)``            — Theorem 4
* deletion-fraction terms  ``O(Δn/n·Δx + (Δn/n)²)`` — Theorem 5
* SVD truncation term      ``O(ε)``                 — Theorems 6/8
* freeze term              ``O((τ - t_s)·δ)``       — Theorem 9
* eigen-update term        ``O(‖ΔXᵀΔX‖)``           — Theorem 7

The bounds are asymptotic, so the report carries the raw ingredient values
(with the Lemma 9 constant for the interpolation term) rather than claiming
a certified radius; the test suite checks the *observed* deviations are
dominated by these quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.interpolation import SIGMOID_SECOND_DERIVATIVE_BOUND
from ..linalg.matrix_utils import is_sparse, spectral_norm
from .provenance_store import ProvenanceStore


@dataclass
class UpdateErrorReport:
    """Ingredients of the Theorem 5/8/9 deviation bound for one removal set."""

    n_samples: int
    n_removed: int
    deletion_fraction: float
    interpolation_delta: float | None  # Δx (None for linear regression)
    linearization_term: float | None  # Lemma 9: Δx²/8 · max|f''|
    fraction_term: float  # Δn/n · Δx + (Δn/n)²
    svd_epsilon: float | None  # ε of the truncation, if SVD is used
    removed_gram_norm: float | None  # ‖ΔXᵀΔX‖₂ (PrIU-opt term)
    freeze_tail: int | None  # τ - t_s (PrIU-opt logistic term)

    def dominant_terms(self) -> dict[str, float]:
        """The non-None bound ingredients, keyed by their theorem."""
        terms: dict[str, float] = {
            "thm5:deletion_fraction": self.fraction_term,
        }
        if self.linearization_term is not None:
            terms["thm4:linearization"] = self.linearization_term
        if self.svd_epsilon is not None:
            terms["thm6/8:svd_epsilon"] = self.svd_epsilon
        if self.removed_gram_norm is not None:
            terms["thm7:removed_gram_norm"] = self.removed_gram_norm
        if self.freeze_tail is not None:
            terms["thm9:freeze_tail_iterations"] = float(self.freeze_tail)
        return terms


def interpolation_delta(store: ProvenanceStore) -> float | None:
    """The grid width Δx implied by the store's interpolation setup.

    The store does not retain the interpolator object, so this reconstructs
    Δx from the default configuration when the task is logistic; linear
    regression has no linearization.
    """
    if store.task == "linear":
        return None
    # Capture uses sigmoid_complement_interpolator(); its defaults are
    # half_width=20, n_intervals=100_000 unless the caller overrode them.
    # Callers with custom grids should pass delta explicitly to
    # error_report().
    return 2.0 * 20.0 / 100_000


def error_report(
    store: ProvenanceStore,
    features,
    removed_indices,
    delta: float | None = None,
) -> UpdateErrorReport:
    """Assemble the bound ingredients for deleting ``removed_indices``."""
    removed = np.unique(np.asarray(list(removed_indices), dtype=int))
    n = store.n_samples
    fraction = removed.size / n
    dx = delta if delta is not None else interpolation_delta(store)
    linearization = None
    if dx is not None:
        linearization = dx**2 / 8.0 * SIGMOID_SECOND_DERIVATIVE_BOUND
    fraction_term = fraction * (dx or 0.0) + fraction**2

    removed_gram = None
    if removed.size and not is_sparse(features):
        rows = np.asarray(features, dtype=float)[removed]
        removed_gram = float(spectral_norm(rows.T @ rows))

    svd_epsilon = store.epsilon if store.compression == "svd" else None
    freeze_tail = None
    if store.frozen is not None:
        freeze_tail = store.schedule.n_iterations - store.frozen.t_s
    return UpdateErrorReport(
        n_samples=n,
        n_removed=int(removed.size),
        deletion_fraction=fraction,
        interpolation_delta=dx,
        linearization_term=linearization,
        fraction_term=fraction_term,
        svd_epsilon=svd_epsilon,
        removed_gram_norm=removed_gram,
        freeze_tail=freeze_tail,
    )


def convergence_check(
    features, regularization: float, learning_rate: float
) -> dict[str, float]:
    """Lemma 1's η < 1/L condition for the linear-regression objective.

    Returns the Lipschitz estimate ``L = 2‖XᵀX‖₂/n + λ``, the requested
    learning rate, and the safe upper bound.  (For logistic regression the
    same L upper-bounds the Hessian since |f'| ≤ 1/4.)
    """
    n = features.shape[0]
    if is_sparse(features):
        gram_norm = spectral_norm(features.T @ features)
    else:
        dense = np.asarray(features, dtype=float)
        gram_norm = spectral_norm(dense.T @ dense)
    lipschitz = 2.0 * gram_norm / n + regularization
    return {
        "lipschitz": float(lipschitz),
        "learning_rate": float(learning_rate),
        "safe_learning_rate": float(1.0 / lipschitz),
        "satisfies_lemma1": float(learning_rate < 1.0 / lipschitz),
    }
