"""Plan maintenance: bounded compiled state under commit churn.

Every committed deletion leaves a little state behind that correctness
does not require but nothing used to reclaim:

* ``ProvenanceStore.compact`` appends *exact* rank-Δ correction columns to
  truncated-SVD summaries (re-truncating eagerly would perturb in-flight
  answers), so factor widths grow monotonically with commit count;
* ``ReplayPlan.refresh`` drops multinomial softmax rows *logically* — the
  ``(H, q)`` flats keep their physical size and a logical→physical
  ``_slot_map`` grows instead, so dead rows accumulate behind the map;
* PrIU-opt's offline eigendecompositions go stale on every commit (the
  gram/moment state is downdated exactly, the eigen state lazily).

Left alone, a long-lived GDPR-serving process degrades toward
recompile-from-scratch memory and cost.  This module makes reclamation a
first-class lifecycle stage:

* :class:`MaintenanceCost` — the accounting object threaded through
  :class:`~repro.core.provenance_store.ProvenanceStore`,
  :class:`~repro.core.replay_plan.ReplayPlan` and the PrIU-opt updaters:
  slot-map garbage rows, SVD correction-column widths, stale-eigen flags
  and the resident byte footprint, snapshotted by
  :meth:`~repro.core.api.IncrementalTrainer.maintenance_cost`;
* :class:`MaintenancePolicy` — configurable thresholds deciding which
  maintenance tasks are *due* for a given cost (the fleet evaluates it
  after every committed batch; ``MaintenancePolicy()`` treats any garbage
  as due, which is what an explicit ``trainer.maintain()`` call wants);
* :class:`MaintenanceReport` — the receipt of one
  :meth:`~repro.core.api.IncrementalTrainer.maintain` call: what ran,
  the exact-vs-retruncated error bound, bytes and columns reclaimed,
  and the cost before/after.

The answer contract survives maintenance: re-packing and eigen refresh
are exact, and the default ε-re-truncation drops only the numerically
zero tail (see :func:`~repro.linalg.svd.retruncate_summary`), so
committed-query(T) == original-query(committed ∪ T) keeps holding at
atol 1e-10 through any interleaving of commits and maintenance
(property-tested in ``tests/core/test_maintenance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Task names a :class:`MaintenancePolicy` may mark due.
MAINTENANCE_TASKS = ("svd", "repack", "eigen")


@dataclass(frozen=True)
class MaintenanceCost:
    """How much reclaimable garbage one trainer's compiled state carries.

    ``slot_*`` describe the multinomial plan flats (physical rows held vs
    rows reachable through the slot map); ``svd_*`` count the correction
    columns commits appended to truncated-SVD summaries since the last
    re-truncation; ``stale_eigen`` counts deferred PrIU-opt
    eigendecompositions (frozen logistic state and/or the linear
    updater).  ``plan_nbytes``/``store_nbytes`` are the current resident
    footprints the garbage inflates.
    """

    slot_garbage_rows: int = 0
    slot_physical_rows: int = 0
    svd_correction_columns: int = 0
    svd_max_correction_columns: int = 0
    svd_widened_summaries: int = 0
    stale_eigen: int = 0
    plan_nbytes: int = 0
    store_nbytes: int = 0

    @property
    def slot_garbage_fraction(self) -> float:
        """Dead fraction of the multinomial flats (0.0 when no slot map)."""
        if self.slot_physical_rows == 0:
            return 0.0
        return self.slot_garbage_rows / self.slot_physical_rows

    @property
    def clean(self) -> bool:
        """True when there is nothing for :meth:`maintain` to reclaim."""
        return (
            self.slot_garbage_rows == 0
            and self.svd_correction_columns == 0
            and self.stale_eigen == 0
        )

    def as_dict(self) -> dict:
        """JSON-serializable form (registry ``describe()``, benchmarks)."""
        return {
            "slot_garbage_rows": self.slot_garbage_rows,
            "slot_physical_rows": self.slot_physical_rows,
            "slot_garbage_fraction": self.slot_garbage_fraction,
            "svd_correction_columns": self.svd_correction_columns,
            "svd_max_correction_columns": self.svd_max_correction_columns,
            "svd_widened_summaries": self.svd_widened_summaries,
            "stale_eigen": self.stale_eigen,
            "plan_nbytes": self.plan_nbytes,
            "store_nbytes": self.store_nbytes,
        }


@dataclass(frozen=True)
class MaintenancePolicy:
    """When is each maintenance task worth running?

    The default thresholds are all zero: *any* reclaimable garbage makes
    the task due, which is the behaviour an explicit
    :meth:`~repro.core.api.IncrementalTrainer.maintain` call wants.  A
    background scheduler (``FleetServer(maintenance=...)``) raises them so
    maintenance amortizes over many commits instead of chasing every one.

    ``svd_epsilon`` is forwarded to
    :func:`~repro.linalg.svd.retruncate_summary`: ``None`` (default)
    re-truncates to the numerical rank only — exact, answer-preserving —
    while an explicit ε applies the paper's lossy tail-ratio criterion
    with the error bound surfaced in the report.

    ``eigen_correction_limit`` forwards to the lazy PrIU-opt refresh: when
    the commits deferred since the last refresh removed at most this many
    (weighted) rows, the refresh corrects the frozen eigen*values* through
    the existing incremental machinery (Eq. 18 — ``O(Δn·m²)``, same
    approximation family as per-request updates) instead of paying the
    full ``O(m³)`` re-eigendecomposition.  The default 0 always
    recomputes exactly.

    ``svd_incremental`` lets re-truncation fold few appended correction
    columns into the existing orthogonal factors
    (:func:`~repro.linalg.svd.retruncate_summary` with ``appended``)
    instead of re-running thin-QR over the whole width — the crossover
    is :func:`~repro.linalg.svd.incremental_retruncation_wins`, answers
    are preserved to machine precision either way.  ``False`` forces the
    full path (diagnostics / A-B timing).
    """

    max_slot_garbage_rows: int = 0
    max_slot_garbage_fraction: float = 0.0
    max_svd_correction_columns: int = 0
    refresh_stale_eigen: bool = True
    svd_epsilon: float | None = None
    eigen_correction_limit: int = 0
    svd_incremental: bool = True

    def __post_init__(self) -> None:
        if self.max_slot_garbage_rows < 0:
            raise ValueError("max_slot_garbage_rows must be >= 0")
        if not 0.0 <= self.max_slot_garbage_fraction <= 1.0:
            raise ValueError("max_slot_garbage_fraction must be in [0, 1]")
        if self.max_svd_correction_columns < 0:
            raise ValueError("max_svd_correction_columns must be >= 0")
        if self.svd_epsilon is not None and self.svd_epsilon < 0.0:
            raise ValueError("svd_epsilon must be >= 0 (or None)")
        if self.eigen_correction_limit < 0:
            raise ValueError("eigen_correction_limit must be >= 0")

    def due(self, cost: MaintenanceCost) -> tuple[str, ...]:
        """Which of :data:`MAINTENANCE_TASKS` the thresholds mark due."""
        due: list[str] = []
        if cost.svd_correction_columns > 0 and (
            cost.svd_max_correction_columns > self.max_svd_correction_columns
        ):
            due.append("svd")
        if cost.slot_garbage_rows > self.max_slot_garbage_rows and (
            cost.slot_garbage_fraction > self.max_slot_garbage_fraction
        ):
            due.append("repack")
        if self.refresh_stale_eigen and cost.stale_eigen > 0:
            due.append("eigen")
        return tuple(due)


@dataclass
class MaintenanceReport:
    """Receipt of one :meth:`~repro.core.api.IncrementalTrainer.maintain`.

    ``performed`` names the tasks that actually ran; each task's receipt
    dict carries what it reclaimed (``svd``: summaries re-truncated,
    columns dropped, worst ``error_bound``; ``repack``: garbage rows and
    bytes freed; ``eigen``: which decompositions refreshed and how).
    ``cost_before``/``cost_after`` bracket the run so a scheduler can
    verify the thresholds were actually discharged.
    """

    performed: tuple[str, ...]
    cost_before: MaintenanceCost
    cost_after: MaintenanceCost
    svd: dict | None = None
    repack: dict | None = None
    eigen: dict | None = None
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "performed": list(self.performed),
            "svd": self.svd,
            "repack": self.repack,
            "eigen": self.eigen,
            "seconds": self.seconds,
            "cost_before": self.cost_before.as_dict(),
            "cost_after": self.cost_after.as_dict(),
        }
