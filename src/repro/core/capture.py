"""Provenance capture: the offline phase of PrIU (Sec. 5).

:func:`train_with_capture` runs the ordinary GBM training of
:mod:`repro.models.sgd` while a hook records, per iteration, the numeric
provenance summaries described in :mod:`repro.core.provenance_store`.  This
phase happens once, during the training of the initial model, and its cost is
*not* part of the update time PrIU reports (Sec. 6.2 "Incrementality").

Compression policy (``compression=``):

* ``"auto"`` — truncated SVD factors when the parameter dimension exceeds the
  mini-batch size (the ``m > B`` regime of Sec. 5.1), dense summaries
  otherwise; sparse feature matrices switch to the coefficient-only sparse
  mode of Sec. 5.3.
* ``"svd"`` / ``"none"`` — force one representation.

``freeze_at`` enables the PrIU-opt logistic optimization (Sec. 5.4): at
iteration ``t_s`` the interpolation state of *every* training sample is
frozen and the full-dataset ``C*`` is eigendecomposed offline.
"""

from __future__ import annotations

import numpy as np

from ..linalg.eigen import eigendecompose
from ..linalg.interpolation import (
    PiecewiseLinearInterpolator,
    sigmoid_complement_interpolator,
)
from ..linalg.matrix_utils import is_sparse
from ..linalg.svd import (
    TruncatedSummary,
    select_rank,
    truncate_from_samples,
    truncate_summary,
)
from ..models.batching import BatchSchedule
from ..models.objectives import (
    BinaryLogisticObjective,
    LinearRegressionObjective,
    MultinomialLogisticObjective,
)
from ..models.sgd import TrainingResult, train
from .provenance_store import (
    FrozenProvenance,
    LinearRecord,
    LogisticRecord,
    MultinomialRecord,
    ProvenanceStore,
)


def _resolve_compression(compression: str, n_params: int, batch_size: int) -> str:
    if compression == "auto":
        return "svd" if n_params > batch_size else "none"
    if compression in ("svd", "none"):
        return compression
    raise ValueError(f"unknown compression mode: {compression}")


def _multinomial_lambdas(probs: np.ndarray) -> np.ndarray:
    """Batched ``Λ_i = diag(p_i) - p_i p_iᵀ`` (B × q × q)."""
    batch, q = probs.shape
    lam = -np.einsum("ik,il->ikl", probs, probs)
    lam[:, np.arange(q), np.arange(q)] += probs
    return lam


def _multinomial_moment(
    probs: np.ndarray, wx: np.ndarray, labels: np.ndarray, block: np.ndarray
) -> np.ndarray:
    """``D^(t) = Σ_i (Λ_i u_i - p_i + e_{y_i}) x_iᵀ`` as a q × m matrix."""
    pu = np.einsum("ik,ik->i", probs, wx)
    lam_u = probs * wx - probs * pu[:, None]
    coeff = lam_u - probs
    coeff[np.arange(len(labels)), labels] += 1.0
    return coeff.T @ block


def _multinomial_dense_summary(
    probs: np.ndarray, block: np.ndarray
) -> np.ndarray:
    """``C^(t) = -Σ_i Λ_i ⊗ x_i x_iᵀ`` as a dense (qm × qm) matrix.

    Uses ``Λ_i = diag(p_i) - p_i p_iᵀ`` to split the sum into ``q`` weighted
    grams (the block diagonal) plus one rank-``B`` gram of the Kronecker rows
    ``p_i ⊗ x_i`` — all BLAS matmuls, ``O(B q m² + B (qm)²)`` instead of a
    naive ``O(B q² m²)`` einsum with poor constants.
    """
    batch, q = probs.shape
    m = block.shape[1]
    dense = np.zeros((q * m, q * m))
    # Block diagonal: -Σ_i p_ik x_i x_iᵀ on the (k, k) block.
    for k in range(q):
        dense[k * m : (k + 1) * m, k * m : (k + 1) * m] = -(
            block.T @ (block * probs[:, k : k + 1])
        )
    # Rank-B correction: +Σ_i (p_i ⊗ x_i)(p_i ⊗ x_i)ᵀ.
    kron_rows = (probs[:, :, None] * block[:, None, :]).reshape(batch, q * m)
    dense += kron_rows.T @ kron_rows
    return dense


def _multinomial_projected_summary(
    probs: np.ndarray, block: np.ndarray, epsilon: float
):
    """Truncated ``C^(t)`` via the feature-subspace projection.

    The batch rows span an ε-rank-``r_x`` subspace ``V`` of feature space, so
    with ``x_i = V z_i``:

        ``C = (I_q ⊗ V) [ -Σ_i Λ_i ⊗ z_i z_iᵀ ] (I_q ⊗ V)ᵀ``

    The inner operator is only ``(q·r_x)²`` — its symmetric eigendecomposition
    replaces an intractable ``(qm)³`` one, and the resulting factors are
    mapped back through ``I_q ⊗ V``.  This is what makes PrIU viable for the
    cifar10-style large dense parameter space.
    """
    batch, q = probs.shape
    m = block.shape[1]
    _, s, vt = np.linalg.svd(block, full_matrices=False)
    r_x = max(1, min(select_rank(s, epsilon), s.size))
    basis = vt[:r_x].T  # m × r_x
    z = block @ basis  # B × r_x
    inner = _multinomial_dense_summary(probs, z)  # (q r_x) × (q r_x)
    evals, evecs = np.linalg.eigh(0.5 * (inner + inner.T))
    order = np.argsort(-np.abs(evals))
    evals = evals[order]
    evecs = evecs[:, order]
    rank = max(1, min(select_rank(np.abs(evals), epsilon), evals.size))
    # Map each kept eigenvector (q, r_x) back to (q, m) through V.
    kept = evecs[:, :rank].T.reshape(rank, q, r_x)
    full = (kept @ basis.T).reshape(rank, q * m).T  # qm × rank
    return TruncatedSummary(left=full * evals[:rank], right=full)


def _multinomial_svd_summary(
    probs: np.ndarray, block: np.ndarray, epsilon: float
):
    """Truncated factors of ``C^(t)`` (row-major vec layout ``w.reshape(q, m)``).

    Three routes by regime:

    * large parameter spaces (``qm`` beyond direct eigendecomposition):
      feature-subspace projection (:func:`_multinomial_projected_summary`);
    * large batches (``Bq ≥ qm``): dense summary + symmetric truncation;
    * small batches: ``Bq`` weighted Kronecker rows through the thin SVD.
    """
    batch, q = probs.shape
    m = block.shape[1]
    if q * m > 600:
        return _multinomial_projected_summary(probs, block, epsilon)
    if batch * q >= q * m:
        dense = _multinomial_dense_summary(probs, block)
        return truncate_summary(dense, epsilon=epsilon, symmetric=True)
    lam = _multinomial_lambdas(probs)
    evals, evecs = np.linalg.eigh(lam)  # B×q, B×q×q (columns are vectors)
    rows = np.einsum("iqk,im->ikqm", evecs, block).reshape(batch * q, q * m)
    weights = -evals.reshape(batch * q)
    keep = np.abs(weights) > 1e-12
    if not np.any(keep):
        keep = np.zeros_like(weights, dtype=bool)
        keep[0] = True
    return truncate_from_samples(rows[keep], weights[keep], epsilon=epsilon)


def train_with_capture(
    objective,
    features,
    labels: np.ndarray,
    schedule: BatchSchedule,
    learning_rate: float,
    compression: str = "auto",
    epsilon: float = 0.01,
    interpolator: PiecewiseLinearInterpolator | None = None,
    freeze_at: float | None = None,
    max_dense_params: int = 2500,
    w0: np.ndarray | None = None,
) -> tuple[TrainingResult, ProvenanceStore]:
    """Train the initial model while caching PrIU's provenance summaries."""
    labels = np.asarray(labels)
    n_samples, n_features = features.shape
    sparse_mode = is_sparse(features)
    if isinstance(objective, MultinomialLogisticObjective):
        task = "multinomial_logistic"
        n_classes = objective.n_classes
    elif isinstance(objective, BinaryLogisticObjective):
        task = "binary_logistic"
        n_classes = 2
    elif isinstance(objective, LinearRegressionObjective):
        task = "linear"
        n_classes = 1
    else:
        raise TypeError(f"unsupported objective: {type(objective).__name__}")

    n_params = objective.n_parameters(n_features)
    mode = _resolve_compression(compression, n_params, schedule.batch_size)
    if sparse_mode:
        mode = "sparse"

    if task != "linear" and interpolator is None:
        interpolator = sigmoid_complement_interpolator()

    store = ProvenanceStore(
        task=task,
        schedule=schedule,
        learning_rate=float(learning_rate),
        regularization=float(objective.regularization),
        n_samples=n_samples,
        n_features=n_features,
        n_classes=n_classes,
        compression=mode,
        epsilon=epsilon,
        sparse_mode=sparse_mode,
    )

    freeze_iteration = None
    if freeze_at is not None:
        if task == "linear":
            raise ValueError("freeze_at applies to logistic tasks only")
        freeze_iteration = int(freeze_at * schedule.n_iterations)
        freeze_iteration = max(1, min(freeze_iteration, schedule.n_iterations))

    empty = np.empty(0)

    def linear_hook(t, batch, w, extras) -> None:
        block = features[batch]
        y = labels[batch].astype(float)
        if sparse_mode:
            store.add(LinearRecord(batch=batch, summary=None, moment=empty))
            return
        block = np.asarray(block, dtype=float)
        moment = block.T @ y
        if mode == "svd":
            summary = truncate_from_samples(block, epsilon=epsilon)
        else:
            summary = block.T @ block
        store.add(LinearRecord(batch=batch, summary=summary, moment=moment))

    def binary_hook(t, batch, w, extras) -> None:
        margins = extras["margins"]
        slopes, intercepts = interpolator.coefficients(margins)
        y = labels[batch].astype(float)
        if sparse_mode:
            store.add(
                LogisticRecord(
                    batch=batch,
                    slopes=slopes,
                    intercepts=intercepts,
                    summary=None,
                    moment=empty,
                )
            )
        else:
            block = np.asarray(features[batch], dtype=float)
            moment = block.T @ (intercepts * y)
            if mode == "svd":
                summary = truncate_from_samples(block, slopes, epsilon=epsilon)
            else:
                summary = block.T @ (block * slopes[:, None])
            store.add(
                LogisticRecord(
                    batch=batch,
                    slopes=slopes,
                    intercepts=intercepts,
                    summary=summary,
                    moment=moment,
                )
            )
        if freeze_iteration is not None and t == freeze_iteration:
            _freeze_binary(store, features, labels, w, interpolator, t)

    def multinomial_hook(t, batch, w, extras) -> None:
        probs = extras["probabilities"]
        q = objective.n_classes
        block = features[batch]
        block = np.asarray(
            block.todense() if is_sparse(block) else block, dtype=float
        )
        weight_rows = w.reshape(q, n_features)
        wx = block @ weight_rows.T
        y = np.asarray(labels[batch], dtype=int)
        moment = _multinomial_moment(probs, wx, y, block)
        if sparse_mode:
            summary = None
        elif mode == "svd":
            summary = _multinomial_svd_summary(probs, block, epsilon)
        else:
            summary = _multinomial_dense_summary(probs, block)
        store.add(
            MultinomialRecord(
                batch=batch,
                probabilities=probs.copy(),
                wx=wx,
                summary=summary,
                moment=moment,
            )
        )
        if freeze_iteration is not None and t == freeze_iteration:
            _freeze_multinomial(
                store, objective, features, labels, w, t, max_dense_params
            )

    hooks = {
        "linear": linear_hook,
        "binary_logistic": binary_hook,
        "multinomial_logistic": multinomial_hook,
    }
    result = train(
        objective,
        features,
        labels,
        schedule,
        learning_rate,
        w0=w0,
        capture_hook=hooks[task],
    )
    return result, store


def _freeze_binary(
    store: ProvenanceStore,
    features,
    labels: np.ndarray,
    w: np.ndarray,
    interpolator: PiecewiseLinearInterpolator,
    t_s: int,
) -> None:
    """Freeze full-dataset coefficients at ``t_s`` and eigendecompose ``C*``."""
    y = np.asarray(labels, dtype=float)
    if is_sparse(features):
        margins = y * np.asarray(features @ w).ravel()
        dense = None
    else:
        dense = np.asarray(features, dtype=float)
        margins = y * (dense @ w)
    slopes, intercepts = interpolator.coefficients(margins)
    if dense is None:
        # Sparse frozen state keeps coefficients only; the eigen tail is a
        # dense-mode optimization (Sec. 5.3 keeps sparse data on Eq. 11).
        store.frozen = FrozenProvenance(
            t_s=t_s,
            weights_at_ts_available=False,
            slopes=slopes,
            intercepts=intercepts,
        )
        return
    gram_star = dense.T @ (dense * slopes[:, None])
    moment_star = dense.T @ (intercepts * y)
    eigen = eigendecompose(gram_star)
    store.frozen = FrozenProvenance(
        t_s=t_s,
        weights_at_ts_available=True,
        slopes=slopes,
        intercepts=intercepts,
        gram=gram_star,
        moment=moment_star,
        eigenvectors=eigen.eigenvectors,
        eigenvalues=eigen.eigenvalues,
    )


def _freeze_multinomial(
    store: ProvenanceStore,
    objective: MultinomialLogisticObjective,
    features,
    labels: np.ndarray,
    w: np.ndarray,
    t_s: int,
    max_dense_params: int,
) -> None:
    """Multinomial frozen state; dense eigen tail only for small ``qm``."""
    q = objective.n_classes
    n_features = features.shape[1]
    if q * n_features > max_dense_params or is_sparse(features):
        return  # fall back to plain PrIU for the whole trajectory
    dense = np.asarray(features, dtype=float)
    probs = objective.probabilities(w, dense)
    wx = dense @ w.reshape(q, n_features).T
    y = np.asarray(labels, dtype=int)
    moment_star = _multinomial_moment(probs, wx, y, dense)
    gram_star = _multinomial_dense_summary(probs, dense)
    eigen = eigendecompose(gram_star)
    store.frozen = FrozenProvenance(
        t_s=t_s,
        weights_at_ts_available=True,
        probabilities=probs,
        wx=wx,
        gram=gram_star,
        moment=moment_star.ravel(),
        eigenvectors=eigen.eigenvectors,
        eigenvalues=eigen.eigenvalues,
    )
