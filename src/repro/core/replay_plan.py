"""Compiled replay plans: PrIU's batched multi-request update engine.

The provenance store is optimized for *capture* (one record per iteration);
serving heavy deletion traffic wants the transpose.  A :class:`ReplayPlan`
compiles the store once — offline, next to the rest of the provenance
phase — into contiguous structure-of-arrays state:

* the occurrence index packed into three flat sorted arrays
  (:class:`~repro.core.provenance_store.PackedOccurrenceIndex`), so a
  removal set resolves to its (iteration, position) hits via
  ``np.searchsorted`` instead of dict walks;
* per-iteration moments stacked into one ``(τ, m)`` (or ``(τ, q·m)``)
  matrix, per-sample interpolation state (slopes/intercepts, softmax
  probabilities, ``W x``) concatenated into flat slot-indexed arrays so the
  state of any hit is a single fancy-gather;
* summaries pre-extracted into homogeneous lists — dense matrices or
  pre-grouped SVD ``(P, V)`` factor pairs — so the hot loop never touches a
  record object or an ``isinstance`` check;
* sparse mode additionally pre-slices the per-iteration CSR batch blocks
  and precomputes their base moments ``X_tᵀ(b_t ∘ y_t)``, which the seed
  path recomputed on every request.

On top of that layout, :meth:`ReplayPlan.run` replays **K deletion sets
simultaneously**: the K weight vectors stack into an ``m × K`` matrix, so
the bulk term of every iteration (Eq. 13/14, 19/20) is a single GEMM
``G^(t) W`` instead of K sequential GEMVs, and only the sparse per-request
delta corrections ``ΔG/ΔC/Δd/ΔD`` — pre-grouped by (iteration, request) —
run per column.  At the paper's Fig-4 deletion rate (0.1%) most iterations
have no hits for a given request, so the per-iteration cost is one GEMM
plus a near-empty correction pass.

When batching wins: the replay loop is interpretation-bound (Python and
GEMV overhead per iteration) whenever ``m`` and the SVD ranks are modest,
which is exactly the PrIU regime; amortizing that overhead over K
concurrent requests approaches a K-fold speedup until the GEMM itself
dominates.  A single request (K = 1) through the plan costs the same
arithmetic as the seed path but resolves its hits through the packed index,
so it is never slower.
"""

from __future__ import annotations

import numpy as np

from ..linalg.matrix_utils import is_sparse
from . import kernels
from .provenance_store import (
    CompactionStats,
    PackedOccurrenceIndex,
    ProvenanceStore,
    normalize_removed_indices,
)


def _drop_rows(arr: np.ndarray, dropped: np.ndarray) -> np.ndarray:
    """``np.delete(arr, dropped, axis=0)`` as contiguous-segment memcpy.

    ``dropped`` is sorted-unique and sparse relative to ``arr``; stitching
    the surviving segments with one ``np.concatenate`` is ~3× faster than
    the boolean-mask gather ``np.delete`` performs, which is what keeps an
    incremental plan refresh cheaper than recompiling the flats.
    """
    if dropped.size == 0:
        return np.asarray(arr)
    # Collapse consecutive dropped indices into runs so the number of
    # surviving slices is one per *gap*, not one per dropped row: the old
    # per-index comprehension paid a Python-level slice even for a dense
    # run of drops.
    run_breaks = np.flatnonzero(np.diff(dropped) > 1) + 1
    run_starts = dropped[np.concatenate(([0], run_breaks))]
    run_stops = dropped[np.concatenate((run_breaks - 1, [dropped.size - 1]))]
    keep_lo = np.concatenate(([0], run_stops + 1))
    keep_hi = np.concatenate((run_starts, [arr.shape[0]]))
    pieces = [
        arr[lo:hi]
        for lo, hi in zip(keep_lo.tolist(), keep_hi.tolist())
        if lo < hi
    ]
    if not pieces:  # every row dropped
        return np.asarray(arr)[:0]
    return np.concatenate(pieces)


class ReplayPlan:
    """One-time compilation of a :class:`ProvenanceStore` for fast replay.

    Parameters
    ----------
    store, features, labels, w0:
        Exactly what :class:`~repro.core.priu.PrIUUpdater` takes; the plan
        produces numerically matching updates (atol ≲ 1e-12 — only BLAS
        reduction order differs).
    cache_sparse_blocks:
        Sparse mode pre-slices the per-iteration CSR blocks (a time/memory
        trade: the seed path re-slices them on every request).  Disable to
        fall back to slicing inside the loop.
    kernel_block_size:
        Iterations fused per replay block (see :mod:`repro.core.kernels`).
        ``None`` resolves to :data:`~repro.core.kernels.DEFAULT_BLOCK_SIZE`
        for dense SVD-compressed plans (the only layout with a cached
        low-rank per-iteration operator); values ``<= 1`` disable fusion
        entirely — the plan is then bit-identical to the legacy
        per-iteration engine.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        features,
        labels: np.ndarray,
        w0: np.ndarray | None = None,
        cache_sparse_blocks: bool = True,
        kernel_block_size: int | None = None,
    ) -> None:
        self.store = store
        self.task = store.task
        self.sparse = is_sparse(features) or store.sparse_mode
        self.features = features if self.sparse else np.asarray(features, float)
        self.labels = np.asarray(labels)
        self.n_iterations = len(store.records)
        self.eta = float(store.learning_rate)
        self.lam = float(store.regularization)
        self.shrink = 1.0 - self.eta * self.lam
        if store.task == "multinomial_logistic":
            self.n_params = store.n_classes * store.n_features
        else:
            self.n_params = store.n_features
        self._w0 = (
            np.zeros(self.n_params) if w0 is None else np.asarray(w0, float)
        )
        self._compiled_version = store._version
        # Set by load_plan() when the archive embeds the fitted model's
        # final parameter vector; None for plans compiled in-process.
        self.final_weights: np.ndarray | None = None
        # Deferred checksum sweep over memory-mapped members (see
        # load_plan); runs once, on the first replay.
        self._integrity_check = None
        self.supported = not (self.sparse and self.task == "multinomial_logistic")
        self._cache_sparse_blocks = bool(cache_sparse_blocks)
        self._kernel_block_size = kernel_block_size
        self._kernel = None
        self._kernel_stats = {
            "fused_blocks": 0,
            "fused_iterations": 0,
            "scalar_iterations": 0,
        }
        if not self.supported:
            return
        self._scale_num = 2.0 * self.eta if self.task == "linear" else self.eta
        self._compile(cache_sparse_blocks)

    # ------------------------------------------------------------ compile
    def _compile(self, cache_sparse_blocks: bool) -> None:
        records = self.store.records
        tau = self.n_iterations
        self.base_sizes = np.fromiter(
            (len(r.batch) for r in records), dtype=np.int64, count=tau
        )
        # Flat slot index: occurrence (t, pos) -> record_offsets[t] + pos.
        self._record_offsets = np.concatenate(
            ([0], np.cumsum(self.base_sizes))
        )
        self.store.packed_index()  # build (and share) the occurrence index

        if self.task == "multinomial_logistic":
            self._labels_num = self.labels.astype(int)
        else:
            self._labels_num = self.labels.astype(float)

        # Logical slot -> physical flat row.  None means identity; a
        # committed refresh of the multinomial flats installs a gather map
        # instead of rewriting the (H, q) state arrays (see refresh()).
        self._slot_map = None
        self._kernel = None
        kind = self.store.compression
        self._kind = {"none": "dense"}.get(kind, kind)
        if self.sparse:
            self._compile_sparse(cache_sparse_blocks)
            return

        # Summaries as homogeneous lists (refs, no copies).
        if self._kind == "svd":
            self._lefts = [r.summary.left for r in records]
            self._rights = [r.summary.right for r in records]
            self._summaries = None
        else:
            self._summaries = [np.asarray(r.summary) for r in records]
            self._lefts = self._rights = None

        # Stacked moments: one row fetch per iteration in the hot loop.
        self.moments = np.stack(
            [np.asarray(r.moment, dtype=float).ravel() for r in records]
        )

        if self.task == "binary_logistic":
            self._compile_binary_flats(records)
        elif self.task == "multinomial_logistic":
            self._probs_flat = np.concatenate(
                [r.probabilities for r in records]
            )
            self._wx_flat = np.concatenate([r.wx for r in records])
        self._compile_kernel()

    def _resolved_block_size(self) -> int:
        if self._kernel_block_size is None:
            return kernels.DEFAULT_BLOCK_SIZE
        return int(self._kernel_block_size)

    def _compile_kernel(self) -> None:
        """Group the iteration axis into fused replay blocks (dense SVD).

        Only SVD-compressed dense plans carry a cached low-rank operator
        per iteration, which is what the block composition folds; dense
        ``m × m`` summaries and sparse CSR blocks stay on the scalar
        loops.  Splits at the PrIU-opt freeze point so the phase-1
        replay's ``stop_at = t_s`` never clips a block.
        """
        self._kernel = None
        if self.sparse or self._kind != "svd":
            return
        boundaries = ()
        frozen = self.store.frozen
        if frozen is not None:
            boundaries = (int(frozen.t_s),)
        self._kernel = kernels.compile_blocks(
            self._lefts,
            self._rights,
            self.moments,
            self.base_sizes,
            shrink=self.shrink,
            scale_num=self._scale_num,
            sigma=-1.0 if self.task == "linear" else 1.0,
            block_size=self._resolved_block_size(),
            boundaries=boundaries,
        )

    def _compile_sparse(self, cache_blocks: bool) -> None:
        """Sparse mode: pre-slice CSR batch blocks + precompute base moments.

        The seed path re-touches ``features[surviving]`` on every request
        (Sec. 5.3 keeps sparse data on Eq. 11); the plan instead computes the
        *full-batch* bulk term once per iteration and subtracts the removed
        rows' contributions, so the batch block and its moment
        ``X_tᵀ(b_t ∘ y_t)`` can be prepared offline.
        """
        records = self.store.records
        y = self._labels_num
        blocks = []
        moments = np.empty((self.n_iterations, self.n_params))
        for t, record in enumerate(records):
            block = self.features[record.batch]
            y_t = y[record.batch]
            if self.task == "linear":
                moments[t] = np.asarray(block.T @ y_t).ravel()
            else:
                moments[t] = np.asarray(
                    block.T @ (record.intercepts * y_t)
                ).ravel()
            blocks.append(block if cache_blocks else None)
        self.moments = moments
        self._blocks = blocks if cache_blocks else None
        if self.task == "binary_logistic":
            self._compile_binary_flats(records)

    def _compile_binary_flats(self, records) -> None:
        """Slot-indexed interpolation state shared by dense and sparse modes.

        The correction's moment term is ``rowsᵀ (b ∘ y)``, so the labels are
        pre-folded into the intercepts: slot ``j`` holds ``b_j · y_j``.
        """
        self._slopes_flat = np.concatenate([r.slopes for r in records])
        slot_samples = np.concatenate(
            [np.asarray(r.batch, dtype=np.int64) for r in records]
        )
        self._iy_flat = (
            np.concatenate([r.intercepts for r in records])
            * self._labels_num[slot_samples]
        )

    def _block(self, t: int):
        if self._blocks is not None:
            return self._blocks[t]
        return self.features[self.store.records[t].batch]

    # -------------------------------------------------------- persistence
    #
    # The compiled layout splits into (a) *derived* flat arrays that cost
    # real work to build — the packed occurrence index, stacked moments
    # (sparse mode's are τ sparse mat-vecs), the slot-indexed interpolation
    # flats — and (b) cheap *views* into the store / feature matrix
    # (summary refs, CSR batch slices).  Only (a) round-trips through
    # ``save_plan``/``load_plan``; (b) is rebound against the reloaded
    # store at load time.

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Every compiled array :func:`~repro.core.serialization.save_plan`
        persists, keyed by its archive name.

        Round-trip tests compare these bit-for-bit (``np.array_equal`` plus
        dtype equality) between the original and a reloaded plan.
        """
        if not self.supported:
            return {}
        index = self.store.packed_index()
        arrays: dict[str, np.ndarray] = {
            "base_sizes": self.base_sizes,
            "record_offsets": self._record_offsets,
            "moments": self.moments,
            "w0": self._w0,
            "index_samples": index.samples,
            "index_iterations": index.iterations,
            "index_positions": index.positions,
        }
        for attr, key in (
            ("_slopes_flat", "slopes_flat"),
            ("_iy_flat", "iy_flat"),
            ("_probs_flat", "probs_flat"),
            ("_wx_flat", "wx_flat"),
        ):
            value = getattr(self, attr, None)
            if value is not None:
                if self._slot_map is not None:
                    # Materialize the committed layout: archives always
                    # store physically compacted flats, never the map.
                    value = value[self._slot_map]
                arrays[key] = value
        if self._kernel is not None:
            arrays.update(self._kernel.state_arrays())
        return arrays

    def state_meta(self) -> dict[str, str]:
        """Scalar descriptors saved alongside :meth:`state_arrays`."""
        return {
            "task": self.task,
            "kind": self._kind,
            "sparse": str(int(self.sparse)),
            "n_iterations": str(self.n_iterations),
            "n_params": str(self.n_params),
            "n_samples": str(self.store.n_samples),
            "learning_rate": repr(self.eta),
            "regularization": repr(self.lam),
            "kernel_block_size": str(self._resolved_block_size()),
        }

    @classmethod
    def from_compiled_state(
        cls,
        store: ProvenanceStore,
        features,
        labels: np.ndarray,
        meta: dict[str, str],
        arrays: dict[str, np.ndarray],
        cache_sparse_blocks: bool = True,
        kernel_block_size: int | None = None,
    ) -> "ReplayPlan":
        """Rebuild a plan from persisted state without recompiling.

        ``arrays`` may hold read-only memory maps — the replay loops only
        ever read them.  The store, features and labels must be the ones the
        plan was compiled against (same capture run); mismatches in task,
        iteration count, batch sizes or sample count raise ``ValueError``
        rather than silently replaying the wrong trajectory.

        Archived block descriptors (``kernel_*`` members) are rebound as
        zero-copy row-range views when the requested ``kernel_block_size``
        matches the one the archive was compiled with; otherwise — or for
        pre-kernel archives — the blocks are recompiled from the restored
        per-iteration state.
        """
        if meta["task"] != store.task:
            raise ValueError(
                f"plan was compiled for task {meta['task']!r}, "
                f"store holds {store.task!r}"
            )
        n_iterations = int(meta["n_iterations"])
        if n_iterations != len(store.records):
            raise ValueError(
                f"plan covers {n_iterations} iterations, "
                f"store holds {len(store.records)}"
            )
        if int(meta["n_samples"]) != store.n_samples:
            raise ValueError("plan and store disagree on the sample count")
        sparse = is_sparse(features) or store.sparse_mode
        if sparse != bool(int(meta["sparse"])):
            raise ValueError(
                "plan sparsity does not match the provided feature matrix"
            )
        store_kind = {"none": "dense"}.get(store.compression, store.compression)
        if meta["kind"] != store_kind:
            raise ValueError(
                f"plan was compiled for {meta['kind']!r} summaries, "
                f"store holds {store_kind!r}"
            )
        for field, value in (
            ("learning_rate", store.learning_rate),
            ("regularization", store.regularization),
        ):
            if float(meta[field]) != float(value):
                raise ValueError(
                    f"plan and store disagree on {field}: "
                    f"{meta[field]} vs {value!r}"
                )
        base_sizes = np.asarray(arrays["base_sizes"])
        record_sizes = np.fromiter(
            (len(r.batch) for r in store.records),
            dtype=np.int64,
            count=len(store.records),
        )
        if not np.array_equal(base_sizes, record_sizes):
            raise ValueError("plan batch sizes do not match the store")
        labels = np.asarray(labels)
        if labels.shape[0] != store.n_samples or (
            features.shape[0] != store.n_samples
        ):
            raise ValueError(
                "features/labels do not match the checkpointed training set"
            )

        plan = cls.__new__(cls)
        plan.store = store
        plan.task = store.task
        plan.sparse = sparse
        plan.features = features if sparse else np.asarray(features, float)
        plan.labels = labels
        plan.n_iterations = n_iterations
        plan.eta = float(store.learning_rate)
        plan.lam = float(store.regularization)
        plan.shrink = 1.0 - plan.eta * plan.lam
        plan.n_params = int(meta["n_params"])
        plan._compiled_version = store._version
        plan.final_weights = None
        plan._integrity_check = None
        plan.supported = True
        plan._cache_sparse_blocks = bool(cache_sparse_blocks)
        plan._scale_num = 2.0 * plan.eta if plan.task == "linear" else plan.eta
        plan._kind = meta["kind"]
        plan._slot_map = None
        plan._kernel_block_size = kernel_block_size
        plan._kernel = None
        plan._kernel_stats = {
            "fused_blocks": 0,
            "fused_iterations": 0,
            "scalar_iterations": 0,
        }

        plan.base_sizes = arrays["base_sizes"]
        plan._record_offsets = arrays["record_offsets"]
        plan.moments = arrays["moments"]
        plan._w0 = arrays["w0"]
        # Donate the saved occurrence index so the store never re-sorts it.
        if store._packed is None:
            store._packed = PackedOccurrenceIndex(
                samples=arrays["index_samples"],
                iterations=arrays["index_iterations"],
                positions=arrays["index_positions"],
            )
        if plan.task == "multinomial_logistic":
            plan._labels_num = labels.astype(int)
        else:
            plan._labels_num = labels.astype(float)

        if plan.task == "binary_logistic":
            plan._slopes_flat = arrays["slopes_flat"]
            plan._iy_flat = arrays["iy_flat"]
        elif plan.task == "multinomial_logistic":
            plan._probs_flat = arrays["probs_flat"]
            plan._wx_flat = arrays["wx_flat"]

        records = store.records
        if sparse:
            plan._blocks = (
                [plan.features[r.batch] for r in records]
                if cache_sparse_blocks
                else None
            )
        elif plan._kind == "svd":
            plan._lefts = [r.summary.left for r in records]
            plan._rights = [r.summary.right for r in records]
            plan._summaries = None
        else:
            plan._summaries = [np.asarray(r.summary) for r in records]
            plan._lefts = plan._rights = None
        if not sparse and plan._kind == "svd":
            archived = int(meta.get("kernel_block_size", "0"))
            requested = plan._resolved_block_size()
            if "kernel_starts" in arrays and archived == requested:
                plan._kernel = kernels.IterationBlocks.from_state_arrays(
                    arrays,
                    block_size=requested,
                    shrink=plan.shrink,
                    scale_num=plan._scale_num,
                    sigma=-1.0 if plan.task == "linear" else 1.0,
                )
            else:
                plan._compile_kernel()
        return plan

    # ------------------------------------------------------------- refresh
    def refresh(
        self,
        stats: CompactionStats,
        features,
        labels: np.ndarray,
        recompile_threshold: float = 0.25,
    ) -> dict:
        """Re-sync the compiled SoA state after :meth:`ProvenanceStore.compact`.

        ``stats`` is the receipt of the compaction this plan must catch up
        with, and ``features``/``labels`` are the *reduced* training data
        (the compacted id space).  When the removal touched at most
        ``recompile_threshold`` of the iterations the patch is incremental:

        * ``base_sizes`` / ``record_offsets`` shrink by the per-iteration
          drop counts;
        * the slot-indexed flats (slopes, folded intercepts, softmax state)
          lose exactly the dropped occurrence slots (one ``np.delete``);
        * stacked-moment rows and summary references are re-derived for the
          affected iterations only — dense/SVD summaries were already
          patched in place by ``compact``, sparse moments are recomputed
          from the reduced feature blocks;
        * the packed occurrence index was rebuilt by ``compact`` and is
          shared as-is.

        Beyond the threshold (or for every-iteration removals) the whole
        plan recompiles from the compacted store — same result, paid as one
        ``_compile`` instead of many row patches.  Returns a receipt dict
        with ``mode`` (``"refresh"`` | ``"recompile"`` | ``"unsupported"``),
        the touched-iteration fraction, and wall-clock-free bookkeeping the
        commit benchmark and the cost model record — ``patched_bytes`` uses
        the same accounting as :meth:`predict_patch_bytes` so the two are
        directly comparable.
        """
        self.labels = np.asarray(labels)
        self.features = (
            features if self.sparse else np.asarray(features, float)
        )
        self.final_weights = None
        if not self.supported:
            self._compiled_version = self.store._version
            return {
                "mode": "unsupported",
                "fraction": 0.0,
                "patched_bytes": 0,
                "dropped_slots": int(stats.dropped_slots.size),
                "touched_iterations": int(stats.n_iterations_touched),
            }
        fraction = (
            stats.n_iterations_touched / self.n_iterations
            if self.n_iterations
            else 0.0
        )
        if fraction > recompile_threshold:
            self._compile(self._cache_sparse_blocks)
            self._compiled_version = self.store._version
            return {
                "mode": "recompile",
                "fraction": fraction,
                "patched_bytes": self.nbytes(),
                "dropped_slots": int(stats.dropped_slots.size),
                "touched_iterations": int(stats.n_iterations_touched),
            }

        records = self.store.records
        # Sizes/offsets: drop counts land on the affected iterations.
        base_sizes = np.array(self.base_sizes)  # writable (may be a mmap)
        base_sizes[stats.affected_iterations] -= stats.dropped_per_iteration
        self.base_sizes = base_sizes
        self._record_offsets = np.concatenate(([0], np.cumsum(base_sizes)))
        # Slot-indexed flats lose exactly the dropped occurrence slots.
        # Binary flats (two (H,) vectors, also sliced contiguously by the
        # sparse hot loop) are physically compacted; the multinomial
        # softmax state ((H, q) arrays, gather-only access) instead grows a
        # logical→physical slot map — dropping D of H rows then costs
        # O(H) int64 instead of O(H·q) float64, which is what keeps a
        # refresh cheaper than recompiling when the flats dominate.
        for attr in ("_slopes_flat", "_iy_flat"):
            flat = getattr(self, attr, None)
            if flat is not None:
                setattr(self, attr, _drop_rows(flat, stats.dropped_slots))
        if self.task == "multinomial_logistic" and stats.dropped_slots.size:
            if self._slot_map is None:
                old_total = int(stats.dropped_slots.size + base_sizes.sum())
                self._slot_map = _drop_rows(
                    np.arange(old_total, dtype=np.int64), stats.dropped_slots
                )
            else:
                self._slot_map = _drop_rows(
                    self._slot_map, stats.dropped_slots
                )
        if self.task == "multinomial_logistic":
            self._labels_num = self.labels.astype(int)
        else:
            self._labels_num = self.labels.astype(float)
        # Per-iteration state: only the affected rows are re-derived.
        if stats.n_iterations_touched:
            moments = np.array(self.moments)  # writable (may be a mmap)
            for t in stats.affected_iterations:
                record = records[t]
                if self.sparse:
                    block = self.features[record.batch]
                    y_t = self._labels_num[record.batch]
                    if self.task == "linear":
                        moments[t] = np.asarray(block.T @ y_t).ravel()
                    else:
                        moments[t] = np.asarray(
                            block.T @ (record.intercepts * y_t)
                        ).ravel()
                    if self._blocks is not None:
                        self._blocks[t] = block
                else:
                    moments[t] = np.asarray(
                        record.moment, dtype=float
                    ).ravel()
                    if self._kind == "svd":
                        self._lefts[t] = record.summary.left
                        self._rights[t] = record.summary.right
                    else:
                        self._summaries[t] = np.asarray(record.summary)
            self.moments = moments
        # Fused blocks fold the patched summaries/moments/base sizes, so
        # every block a touched iteration lands in is recomposed in place
        # (same spans, new contents) — commits widen SVD factors with
        # correction columns, and the recomposition picks those up.
        kernel_blocks_rebuilt = 0
        if self._kernel is not None:
            kernel_blocks_rebuilt = self._kernel.rebuild(
                stats.affected_iterations,
                self._lefts,
                self._rights,
                self.moments,
                self.base_sizes,
            )
        self._compiled_version = self.store._version
        # Executed-patch byte accounting, mirrored by predict_patch_bytes.
        patched = int(self._record_offsets.nbytes)
        if stats.dropped_slots.size:
            for attr in ("_slopes_flat", "_iy_flat"):
                flat = getattr(self, attr, None)
                if flat is not None:
                    patched += int(flat.nbytes)
            if self.task == "multinomial_logistic":
                patched += int(self._slot_map.nbytes)
        patched += (
            int(stats.n_iterations_touched)
            * int(self.moments.shape[1])
            * int(self.moments.itemsize)
        )
        return {
            "mode": "refresh",
            "fraction": fraction,
            "patched_bytes": patched,
            "dropped_slots": int(stats.dropped_slots.size),
            "touched_iterations": int(stats.n_iterations_touched),
            # Observability only: block recomposition rewrites derived
            # kernel state, not plan SoA arrays, so it stays outside the
            # predict_patch_bytes accounting contract.
            "kernel_blocks_rebuilt": kernel_blocks_rebuilt,
        }

    # -------------------------------------------------------- maintenance
    def slot_garbage_rows(self) -> tuple[int, int]:
        """``(garbage rows, physical rows)`` held by the multinomial flats.

        A committed refresh drops multinomial occurrence slots *logically*
        (through :attr:`_slot_map`) while the ``(H, q)`` softmax flats keep
        their physical size; the difference is reclaimable garbage that
        :meth:`repack` folds away.  Binary/linear flats are physically
        compacted on refresh and never carry garbage.
        """
        flats = getattr(self, "_probs_flat", None)
        if not self.supported or flats is None:
            return 0, 0
        physical = int(flats.shape[0])
        if self._slot_map is None:
            return 0, physical
        return physical - int(self._slot_map.size), physical

    def repack(self) -> dict:
        """Fold the logical→physical slot map into the multinomial flats.

        The gather rewrites ``probs``/``wx`` as contiguous live-row arrays
        and resets the map to identity (``None``), returning the plan to a
        freshly compiled footprint.  Values are *moved, never changed* —
        replay answers are bit-identical before and after — so re-packing
        is safe at any point between dispatches.  Returns a receipt with
        the rows and bytes reclaimed (all-zero when there was no map).
        """
        garbage, physical = self.slot_garbage_rows()
        if self._slot_map is None:
            return {"garbage_rows": 0, "physical_rows": physical,
                    "bytes_freed": 0}
        before = int(
            self._probs_flat.nbytes
            + self._wx_flat.nbytes
            + self._slot_map.nbytes
        )
        self._probs_flat = np.ascontiguousarray(
            self._probs_flat[self._slot_map]
        )
        self._wx_flat = np.ascontiguousarray(self._wx_flat[self._slot_map])
        self._slot_map = None
        after = int(self._probs_flat.nbytes + self._wx_flat.nbytes)
        return {
            "garbage_rows": garbage,
            "physical_rows": physical,
            "bytes_freed": before - after,
        }

    def resync_summaries(self, iterations=None) -> None:
        """Re-bind summary references after the store re-truncated them.

        :meth:`~repro.core.provenance_store.ProvenanceStore.\
retruncate_summaries` replaces record summaries (and bumps the store
        version); the compiled plan holds per-iteration references into
        those records, so the touched ones are re-fetched here and the
        plan's pinned version is advanced.  ``iterations=None`` re-binds
        every iteration.
        """
        if self.supported and not self.sparse and self._kind == "svd":
            records = self.store.records
            if iterations is None:
                iterations = range(self.n_iterations)
            for t in iterations:
                summary = records[t].summary
                self._lefts[t] = summary.left
                self._rights[t] = summary.right
            # Re-truncation changes ranks, so the block schedule is fully
            # regrouped (not just recomposed): the post-maintenance layout
            # equals what a fresh compile of the store would produce.
            self._compile_kernel()
        self._compiled_version = self.store._version

    # ------------------------------------------------------------ queries
    def predict_patch_bytes(
        self, dropped_occurrences: int, touched_iterations: int
    ) -> int:
        """Bytes an incremental :meth:`refresh` of this shape would rewrite.

        The forward model behind :mod:`repro.core.costmodel`: given a
        removal predicted (from the packed occurrence index) to drop
        ``dropped_occurrences`` slots across ``touched_iterations``
        iterations, this mirrors the ``patched_bytes`` accounting the
        refresh receipt reports — rebuilt offsets, physically compacted
        binary flats, the rewritten multinomial slot map and the
        re-derived moment rows.  Keeping both sides on one formula means
        predicted-vs-actual comparisons measure the *estimate's* inputs
        (the searchsorted occurrence counts), never drift between two
        byte formulas.  Returns 0 for unsupported plans (nothing to
        patch — refresh is a metadata-only no-op there).
        """
        if not self.supported:
            return 0
        patched = int(self._record_offsets.nbytes)
        if dropped_occurrences > 0:
            rows_after = int(self._record_offsets[-1]) - int(
                dropped_occurrences
            )
            for attr in ("_slopes_flat", "_iy_flat"):
                flat = getattr(self, attr, None)
                if flat is not None:
                    patched += rows_after * int(flat.itemsize)
            if self.task == "multinomial_logistic":
                patched += rows_after * np.dtype(np.int64).itemsize
        patched += (
            int(touched_iterations)
            * int(self.moments.shape[1])
            * int(self.moments.itemsize)
        )
        return patched

    def nbytes(self) -> int:
        """Extra memory the compiled layout holds beyond the store itself."""
        if not self.supported:
            return 0
        total = int(self.moments.nbytes) + self.store.packed_index().nbytes()
        for name in (
            "_slopes_flat",
            "_iy_flat",
            "_probs_flat",
            "_wx_flat",
            "_slot_map",
        ):
            arr = getattr(self, name, None)
            if arr is not None:
                total += int(arr.nbytes)
        blocks = getattr(self, "_blocks", None)
        if blocks is not None:
            for block in blocks:
                for part in ("data", "indices", "indptr"):
                    arr = getattr(block, part, None)
                    if arr is not None:
                        total += int(arr.nbytes)
        return total

    def defer_integrity_check(self, check) -> None:
        """Register a one-shot integrity sweep to run before the first replay.

        ``load_plan`` uses this for memory-mapped members: their checksum
        verification would defeat the point of mapping if done at load
        time, so it is deferred to the first :meth:`run` — the moment the
        bytes are read anyway, and still strictly before any answer
        derived from them is produced.
        """
        self._integrity_check = check

    def verify_integrity(self) -> None:
        """Run the deferred sweep now (idempotent; no-op if none pending).

        Raises :class:`~repro.core.serialization.\
CheckpointCorruptionError` on a digest mismatch; the pending check is
        cleared only on success, so a failed plan keeps failing instead of
        accidentally serving after a first swallowed error.
        """
        check, self._integrity_check = self._integrity_check, None
        if check is None:
            return
        try:
            check()
        except BaseException:
            self._integrity_check = check
            raise

    def run_single(self, removed_indices, **kwargs) -> np.ndarray:
        """One removal set through the compiled plan (1-D result)."""
        return self.run([removed_indices], **kwargs)[:, 0]

    def run(
        self,
        removed_sets,
        stop_at: int | None = None,
        start_weights: np.ndarray | None = None,
        start_iteration: int = 0,
        assume_unique: bool = False,
    ) -> np.ndarray:
        """Replay K deletion sets simultaneously; returns ``(n_params, K)``.

        Column ``k`` equals ``PrIUUpdater.update(removed_sets[k])`` (same
        arithmetic, associativity-respecting order, so agreement is at BLAS
        reduction-order level).  ``stop_at``/``start_*`` support the
        PrIU-opt two-phase replay, batched.
        """
        if not self.supported:
            raise NotImplementedError(
                "sparse multinomial updates are not supported; "
                "densify or use the binary task"
            )
        if self.store._version != self._compiled_version:
            raise RuntimeError(
                "the provenance store changed after this plan was compiled; "
                "build a fresh ReplayPlan"
            )
        if self._integrity_check is not None:
            self.verify_integrity()
        sets = [
            normalize_removed_indices(s, assume_unique=assume_unique)
            for s in removed_sets
        ]
        n_requests = len(sets)
        if n_requests == 0:
            return np.zeros((self.n_params, 0))
        for removed in sets:
            if removed.size >= self.store.n_samples:
                raise ValueError("cannot delete every training sample")

        end = self.n_iterations if stop_at is None else int(stop_at)
        hits = self._gather_hits(sets, start_iteration, end)

        if start_weights is None:
            weights = np.repeat(self._w0[:, None], n_requests, axis=1)
        else:
            start = np.asarray(start_weights, dtype=float)
            if start.ndim == 1:
                weights = np.repeat(start[:, None], n_requests, axis=1)
            else:
                weights = start.copy()

        if n_requests == 1:
            # Dedicated 1-D path: a lone request pays GEMV + scalar-scale
            # arithmetic (exactly the seed updater's per-iteration profile,
            # minus its dict lookups), not the K-column broadcast machinery.
            runner = {
                "linear": self._run_linear_single,
                "binary_logistic": self._run_binary_single,
                "multinomial_logistic": self._run_multinomial_single,
            }[self.task]
            result, tally = kernels.run_blocked(
                self._kernel, weights[:, 0], hits, start_iteration, end,
                runner,
            )
            self._record_kernel_stats(tally)
            return result[:, None]
        runner = {
            "linear": self._run_linear,
            "binary_logistic": self._run_binary,
            "multinomial_logistic": self._run_multinomial,
        }[self.task]
        result, tally = kernels.run_blocked(
            self._kernel, weights, hits, start_iteration, end, runner
        )
        self._record_kernel_stats(tally)
        return result

    def _record_kernel_stats(self, tally: dict) -> None:
        for key, value in tally.items():
            self._kernel_stats[key] += value

    def kernel_stats(self) -> dict:
        """Cumulative fused-vs-scalar replay tallies (cost-model feed).

        ``fused_iterations`` / ``scalar_iterations`` count iteration
        advances per weight *matrix* (a K-column batch counts once), so
        the split directly measures how much of the replay work rode the
        blocked kernel.
        """
        stats = dict(self._kernel_stats)
        stats["blocks_compiled"] = (
            len(self._kernel) if self._kernel is not None else 0
        )
        stats["block_size"] = self._resolved_block_size()
        return stats

    def kernel_nbytes(self) -> int:
        """Memory held by the compiled block descriptors (0 when scalar).

        Deliberately *not* part of :meth:`nbytes`: descriptor width
        tracks the summaries' current factor widths, so including it
        would make plan-footprint comparisons depend on maintenance
        history rather than the compiled SoA layout.
        """
        return self._kernel.nbytes() if self._kernel is not None else 0

    # ------------------------------------------------------- hit gathering
    def _gather_hits(
        self, sets: list[np.ndarray], start: int, end: int
    ) -> dict:
        """Resolve every (iteration, request) delta correction up front.

        Produces hit arrays sorted by (iteration, request) plus segment
        bounds so the replay loop slices — never searches — its work, a
        ``(τ, K)`` matrix of per-request scale factors ``c·η/B_U^(t)``
        (zero rows encode the degenerate all-removed shrinkage step), and
        the pre-gathered per-hit feature rows / interpolation state.  Hits
        outside ``[start, end)`` are dropped before any gathering — the
        PrIU-opt phase-1 replay (``stop_at = t_s``) never pays for the
        ~30% of occurrences its tail skips.
        """
        index = self.store.packed_index()
        n_requests = len(sets)
        ks, ts, ids, pos = [], [], [], []
        for k, removed in enumerate(sets):
            s_ids, s_ts, s_pos = index.lookup(removed)
            ks.append(np.full(s_ids.size, k, dtype=np.int64))
            ts.append(s_ts)
            ids.append(s_ids)
            pos.append(s_pos)
        hit_k = np.concatenate(ks) if ks else np.empty(0, np.int64)
        hit_t = np.concatenate(ts) if ts else np.empty(0, np.int64)
        hit_ids = np.concatenate(ids) if ids else np.empty(0, np.int64)
        hit_pos = np.concatenate(pos) if pos else np.empty(0, np.int64)
        if start > 0 or end < self.n_iterations:
            keep = (hit_t >= start) & (hit_t < end)
            hit_k, hit_t = hit_k[keep], hit_t[keep]
            hit_ids, hit_pos = hit_ids[keep], hit_pos[keep]
        order = np.lexsort((hit_k, hit_t))
        hit_k, hit_t = hit_k[order], hit_t[order]
        hit_ids, hit_pos = hit_ids[order], hit_pos[order]

        tau = self.n_iterations
        counts = np.bincount(
            hit_t * n_requests + hit_k, minlength=tau * n_requests
        ).reshape(tau, n_requests)
        surviving = self.base_sizes[:, None] - counts
        scales = np.zeros((tau, n_requests))
        alive = surviving > 0
        scales[alive] = self._scale_num / surviving[alive]

        # Segments: one per (iteration, request) pair with hits.
        key = hit_t * n_requests + hit_k
        seg_starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(key)) + 1)
        ) if key.size else np.empty(0, np.int64)
        seg_bounds = np.concatenate((seg_starts, [key.size]))
        seg_t = hit_t[seg_starts] if key.size else np.empty(0, np.int64)
        seg_k = hit_k[seg_starts] if key.size else np.empty(0, np.int64)
        seg_offsets = np.searchsorted(seg_t, np.arange(tau + 1))

        hits = {
            "scales": scales,
            "seg_bounds": seg_bounds,
            "seg_k": seg_k,
            "seg_offsets": seg_offsets,
            "hit_k": hit_k,
            "rows": self.features[hit_ids] if hit_ids.size else None,
        }
        slots = self._record_offsets[hit_t] + hit_pos
        if self.task == "linear":
            hits["y"] = self._labels_num[hit_ids]
        elif self.task == "binary_logistic":
            hits["slopes"] = self._slopes_flat[slots]
            hits["iy"] = self._iy_flat[slots]
        else:
            if self._slot_map is not None:
                slots = self._slot_map[slots]
            hits["probs"] = self._probs_flat[slots]
            hits["wx"] = self._wx_flat[slots]
            hits["y"] = self._labels_num[hit_ids]
        return hits

    # ------------------------------------------------------------ replays
    #
    # Each loop does one GEMM for the bulk term of all K columns, then a
    # single vectorized pass over the iteration's hits: per-hit scalars via
    # one einsum against the gathered weight columns, per-request sums via
    # ``np.add.reduceat`` over the pre-sorted (iteration, request) segments,
    # and one fancy-column scatter into ``adjust``.  No per-request Python
    # work survives in the dense hot loops; sparse mode keeps a per-segment
    # loop because its delta rows stay in CSR form.

    def _run_linear(self, weights, hits, start, end) -> np.ndarray:
        scales = hits["scales"]
        bounds, seg_k, offsets = (
            hits["seg_bounds"],
            hits["seg_k"],
            hits["seg_offsets"],
        )
        rows, y, hit_k = hits["rows"], hits.get("y"), hits["hit_k"]
        shrink = self.shrink
        moments = self.moments
        sparse = self.sparse
        summaries, lefts, rights = None, None, None
        if not sparse:
            if self._kind == "svd":
                lefts, rights = self._lefts, self._rights
            else:
                summaries = self._summaries
        # reprolint: allow[R006] sanctioned per-iteration fallback — kernels.run_blocked
        # fuses hit-free dense-SVD spans and delegates the rest here
        for t in range(start, end):
            if sparse:
                block = self._block(t)
                gram_w = block.T @ (block @ weights)
            elif summaries is not None:
                gram_w = summaries[t] @ weights
            else:
                gram_w = lefts[t] @ (rights[t].T @ weights)
            adjust = moments[t][:, None] - gram_w
            s_lo, s_hi = offsets[t], offsets[t + 1]
            if s_lo != s_hi:
                if sparse:
                    for seg in range(s_lo, s_hi):
                        a, b = bounds[seg], bounds[seg + 1]
                        k = seg_k[seg]
                        r = rows[a:b]
                        delta = r.T @ (r @ weights[:, k] - y[a:b])
                        adjust[:, k] += np.asarray(delta).ravel()
                else:
                    a0, b0 = bounds[s_lo], bounds[s_hi]
                    r = rows[a0:b0]
                    v = (
                        np.einsum("hm,mh->h", r, weights[:, hit_k[a0:b0]])
                        - y[a0:b0]
                    )
                    seg_sums = np.add.reduceat(
                        r * v[:, None], bounds[s_lo:s_hi] - a0, axis=0
                    )
                    adjust[:, seg_k[s_lo:s_hi]] += seg_sums.T
            weights = shrink * weights + adjust * scales[t]
        return weights

    def _run_linear_single(self, w, hits, start, end) -> np.ndarray:
        scales = hits["scales"][:, 0]
        bounds, offsets = hits["seg_bounds"], hits["seg_offsets"]
        rows, y = hits["rows"], hits.get("y")
        shrink = self.shrink
        moments = self.moments
        sparse = self.sparse
        summaries = getattr(self, "_summaries", None)
        lefts = getattr(self, "_lefts", None)
        rights = getattr(self, "_rights", None)
        # reprolint: allow[R006] sanctioned per-iteration fallback — kernels.run_blocked
        # fuses hit-free dense-SVD spans and delegates the rest here
        for t in range(start, end):
            if sparse:
                block = self._block(t)
                gram_w = np.asarray(block.T @ (block @ w)).ravel()
            elif summaries is not None:
                gram_w = summaries[t] @ w
            else:
                gram_w = lefts[t] @ (rights[t].T @ w)
            adjust = moments[t] - gram_w
            s_lo, s_hi = offsets[t], offsets[t + 1]
            if s_lo != s_hi:
                a0, b0 = bounds[s_lo], bounds[s_hi]
                r = rows[a0:b0]
                adjust += np.asarray(r.T @ (r @ w - y[a0:b0])).ravel()
            w = shrink * w + adjust * scales[t]
        return w

    def _run_binary_single(self, w, hits, start, end) -> np.ndarray:
        scales = hits["scales"][:, 0]
        bounds, offsets = hits["seg_bounds"], hits["seg_offsets"]
        rows = hits["rows"]
        hit_slopes, hit_iy = hits.get("slopes"), hits.get("iy")
        shrink = self.shrink
        moments = self.moments
        sparse = self.sparse
        summaries = getattr(self, "_summaries", None)
        lefts = getattr(self, "_lefts", None)
        rights = getattr(self, "_rights", None)
        rec_off = self._record_offsets
        # reprolint: allow[R006] sanctioned per-iteration fallback — kernels.run_blocked
        # fuses hit-free dense-SVD spans and delegates the rest here
        for t in range(start, end):
            if sparse:
                block = self._block(t)
                slopes_t = self._slopes_flat[rec_off[t] : rec_off[t + 1]]
                gram_w = np.asarray(
                    block.T @ (slopes_t * np.asarray(block @ w).ravel())
                ).ravel()
            elif summaries is not None:
                gram_w = summaries[t] @ w
            else:
                gram_w = lefts[t] @ (rights[t].T @ w)
            adjust = gram_w + moments[t]
            s_lo, s_hi = offsets[t], offsets[t + 1]
            if s_lo != s_hi:
                a0, b0 = bounds[s_lo], bounds[s_hi]
                r = rows[a0:b0]
                z = np.asarray(r @ w).ravel()
                adjust -= np.asarray(
                    r.T @ (hit_slopes[a0:b0] * z + hit_iy[a0:b0])
                ).ravel()
            w = shrink * w + adjust * scales[t]
        return w

    def _run_multinomial_single(self, w, hits, start, end) -> np.ndarray:
        scales = hits["scales"][:, 0]
        bounds, offsets = hits["seg_bounds"], hits["seg_offsets"]
        rows, y = hits["rows"], hits.get("y")
        hit_probs, hit_wx = hits.get("probs"), hits.get("wx")
        shrink = self.shrink
        moments = self.moments
        q = self.store.n_classes
        m = self.store.n_features
        summaries = getattr(self, "_summaries", None)
        lefts = getattr(self, "_lefts", None)
        rights = getattr(self, "_rights", None)
        # reprolint: allow[R006] sanctioned per-iteration fallback — kernels.run_blocked
        # fuses hit-free dense-SVD spans and delegates the rest here
        for t in range(start, end):
            if summaries is not None:
                gram_w = summaries[t] @ w
            else:
                gram_w = lefts[t] @ (rights[t].T @ w)
            adjust = gram_w + moments[t]
            s_lo, s_hi = offsets[t], offsets[t + 1]
            if s_lo != s_hi:
                a0, b0 = bounds[s_lo], bounds[s_hi]
                n_hits = b0 - a0
                r = rows[a0:b0]
                probs = hit_probs[a0:b0]
                wx_train = hit_wx[a0:b0]
                current = r @ w.reshape(q, m).T
                pu = np.einsum("hq,hq->h", probs, current)
                lam_s = probs * current - probs * pu[:, None]
                pu2 = np.einsum("hq,hq->h", probs, wx_train)
                lam_u = probs * wx_train - probs * pu2[:, None]
                coeff = lam_u - probs
                coeff[np.arange(n_hits), y[a0:b0]] += 1.0
                adjust -= ((coeff - lam_s).T @ r).ravel()
            w = shrink * w + adjust * scales[t]
        return w

    def _run_binary(self, weights, hits, start, end) -> np.ndarray:
        scales = hits["scales"]
        bounds, seg_k, offsets = (
            hits["seg_bounds"],
            hits["seg_k"],
            hits["seg_offsets"],
        )
        rows, hit_k = hits["rows"], hits["hit_k"]
        hit_slopes, hit_iy = hits.get("slopes"), hits.get("iy")
        shrink = self.shrink
        moments = self.moments
        sparse = self.sparse
        summaries, lefts, rights = None, None, None
        if not sparse:
            if self._kind == "svd":
                lefts, rights = self._lefts, self._rights
            else:
                summaries = self._summaries
        rec_off = self._record_offsets
        # reprolint: allow[R006] sanctioned per-iteration fallback — kernels.run_blocked
        # fuses hit-free dense-SVD spans and delegates the rest here
        for t in range(start, end):
            if sparse:
                block = self._block(t)
                slopes_t = self._slopes_flat[rec_off[t] : rec_off[t + 1]]
                gram_w = block.T @ (slopes_t[:, None] * np.asarray(block @ weights))
            elif summaries is not None:
                gram_w = summaries[t] @ weights
            else:
                gram_w = lefts[t] @ (rights[t].T @ weights)
            adjust = gram_w + moments[t][:, None]
            s_lo, s_hi = offsets[t], offsets[t + 1]
            if s_lo != s_hi:
                if sparse:
                    for seg in range(s_lo, s_hi):
                        a, b = bounds[seg], bounds[seg + 1]
                        k = seg_k[seg]
                        r = rows[a:b]
                        z = np.asarray(r @ weights[:, k]).ravel()
                        delta = r.T @ (hit_slopes[a:b] * z + hit_iy[a:b])
                        adjust[:, k] -= np.asarray(delta).ravel()
                else:
                    a0, b0 = bounds[s_lo], bounds[s_hi]
                    r = rows[a0:b0]
                    v = hit_slopes[a0:b0] * np.einsum(
                        "hm,mh->h", r, weights[:, hit_k[a0:b0]]
                    ) + hit_iy[a0:b0]
                    seg_sums = np.add.reduceat(
                        r * v[:, None], bounds[s_lo:s_hi] - a0, axis=0
                    )
                    adjust[:, seg_k[s_lo:s_hi]] -= seg_sums.T
            weights = shrink * weights + adjust * scales[t]
        return weights

    def _run_multinomial(self, weights, hits, start, end) -> np.ndarray:
        scales = hits["scales"]
        bounds, seg_k, offsets = (
            hits["seg_bounds"],
            hits["seg_k"],
            hits["seg_offsets"],
        )
        rows, y, hit_k = hits["rows"], hits.get("y"), hits["hit_k"]
        hit_probs, hit_wx = hits.get("probs"), hits.get("wx")
        shrink = self.shrink
        moments = self.moments
        q = self.store.n_classes
        m = self.store.n_features
        if self._kind == "svd":
            lefts, rights = self._lefts, self._rights
            summaries = None
        else:
            summaries = self._summaries
        # reprolint: allow[R006] sanctioned per-iteration fallback — kernels.run_blocked
        # fuses hit-free dense-SVD spans and delegates the rest here
        for t in range(start, end):
            if summaries is not None:
                gram_w = summaries[t] @ weights
            else:
                gram_w = lefts[t] @ (rights[t].T @ weights)
            adjust = gram_w + moments[t][:, None]
            s_lo, s_hi = offsets[t], offsets[t + 1]
            if s_lo != s_hi:
                a0, b0 = bounds[s_lo], bounds[s_hi]
                n_hits = b0 - a0
                r = rows[a0:b0]
                probs = hit_probs[a0:b0]
                wx_train = hit_wx[a0:b0]
                # ΔC^(t) applied to each hit's own weight column:
                # current_j = (W_kⱼ x_j) with W_kⱼ = column kⱼ as a q×m map.
                w_cols = weights[:, hit_k[a0:b0]].T.reshape(n_hits, q, m)
                current = np.einsum("hm,hqm->hq", r, w_cols)
                pu = np.einsum("hq,hq->h", probs, current)
                lam_s = probs * current - probs * pu[:, None]
                # ΔD^(t) from the cached training-time state.
                pu2 = np.einsum("hq,hq->h", probs, wx_train)
                lam_u = probs * wx_train - probs * pu2[:, None]
                coeff = lam_u - probs
                coeff[np.arange(n_hits), y[a0:b0]] += 1.0
                # adjust -= (ΔC w + ΔD) = ((coeff - (-lam_s))ᵀ x)… per hit:
                # -(lam_s ⊗ x) + (coeff ⊗ x) summed per request segment.
                contrib = (coeff - lam_s)[:, :, None] * r[:, None, :]
                seg_sums = np.add.reduceat(
                    contrib.reshape(n_hits, q * m),
                    bounds[s_lo:s_hi] - a0,
                    axis=0,
                )
                adjust[:, seg_k[s_lo:s_hi]] -= seg_sums.T
            weights = shrink * weights + adjust * scales[t]
        return weights


def compile_replay_plan(
    store: ProvenanceStore,
    features,
    labels: np.ndarray,
    w0: np.ndarray | None = None,
    **kwargs,
) -> ReplayPlan:
    """Functional alias for :class:`ReplayPlan` construction."""
    return ReplayPlan(store, features, labels, w0=w0, **kwargs)
