"""PrIU-opt: the small-feature-space optimizations (Sec. 5.2 and 5.4).

Linear regression (Sec. 5.2)
    mb-SGD is approximated by GD (statistically equivalent per [29]); the GD
    recursion diagonalizes in the eigenbasis of ``M = XᵀX``.  The offline
    phase eigendecomposes ``M`` once; an update incrementally corrects the
    eigenvalues for ``M' = M - ΔXᵀΔX`` (Eq. 18, Ning et al. 2010) and then
    evaluates the diagonal recursion of Eq. 17 in closed form — ``O(τm)``
    arithmetic collapses to ``O(m)`` per coordinate for constant ``η``.

Logistic regression (Sec. 5.4)
    Interpolation coefficients stabilize as ``w^(t)`` converges, so new
    provenance stops being captured at ``t_s`` (rule of thumb: 70% of ``τ``).
    Phase 1 (``t < t_s``) replays PrIU; phase 2 uses the frozen full-dataset
    ``C*``/``D*`` with the same eigenvalue machinery as the linear case.

Both updaters also expose ``update_many``: K deletion requests share one
vectorized eigen tail — the per-request eigenvalue corrections and moments
stack into ``m × K`` matrices, :func:`~repro.linalg.eigen.gd_diagonal_recursion`
broadcasts over the K columns, and the basis changes ``Qᵀ·`` / ``Q·`` become
GEMMs.  The logistic phase 1 runs through a compiled
:class:`~repro.core.replay_plan.ReplayPlan`, which batches the replay loop
itself.
"""

from __future__ import annotations

import numpy as np

from ..linalg.eigen import (
    EigenSystem,
    gd_diagonal_recursion,
    eigendecompose,
    incremental_eigenvalues_from_rows,
)
from ..linalg.matrix_utils import is_sparse
from .provenance_store import (
    FrozenProvenance,
    ProvenanceStore,
    normalize_removed_indices,
)
from .replay_plan import ReplayPlan


def refresh_frozen_eigen(
    frozen: FrozenProvenance, correction_limit: int = 0
) -> str | None:
    """Discharge a frozen state's deferred eigendecomposition (lazily).

    Commits downdate ``frozen.gram`` exactly but only *flag* the eigen
    state stale (:meth:`~repro.core.provenance_store.FrozenProvenance.\
defer_eigen`); the first PrIU-opt update — or an explicit
    :meth:`~repro.core.api.IncrementalTrainer.maintain` — calls this to
    catch up.  When the deferred removals span at most
    ``correction_limit`` (weighted) rows, the eigen*values* are corrected
    through the existing incremental machinery (Eq. 18, ``O(Δn·m²)``, the
    same eigenvectors-barely-move approximation every PrIU-opt update
    already makes); otherwise the gram is re-eigendecomposed exactly
    (``O(m³)`` — identical to what the eager commit path used to
    produce).  Returns ``"correction"`` / ``"recompute"``, or ``None``
    when nothing was stale.
    """
    if not frozen.eigen_stale:
        return None
    pending = frozen.pending_rows
    if (
        pending is not None
        and frozen.eigenvectors is not None
        and pending.shape[0] <= correction_limit
    ):
        system = EigenSystem(
            eigenvectors=frozen.eigenvectors, eigenvalues=frozen.eigenvalues
        )
        frozen.eigenvalues = incremental_eigenvalues_from_rows(
            system, pending, weights=frozen.pending_weights
        )
        mode = "correction"
    else:
        eigen = eigendecompose(frozen.gram)
        frozen.eigenvectors = eigen.eigenvectors
        frozen.eigenvalues = eigen.eigenvalues
        mode = "recompute"
    frozen.eigen_stale = False
    frozen.pending_rows = None
    frozen.pending_weights = None
    return mode


class PrIUOptLinearUpdater:
    """Eigen-based incremental updates for linear regression (Eq. 15-18)."""

    def __init__(
        self,
        features,
        labels: np.ndarray,
        n_iterations: int,
        learning_rate: float,
        regularization: float,
        w0: np.ndarray | None = None,
        eigen_correction_limit: int = 0,
    ) -> None:
        if is_sparse(features):
            raise ValueError("PrIU-opt requires dense features (Sec. 5.3)")
        self.features = np.asarray(features, dtype=float)
        self.labels = np.asarray(labels, dtype=float).ravel()
        self.n_samples, self.n_features = self.features.shape
        self.n_iterations = int(n_iterations)
        self.learning_rate = float(learning_rate)
        self.regularization = float(regularization)
        self.eigen_correction_limit = int(eigen_correction_limit)
        self._w0 = (
            np.zeros(self.n_features) if w0 is None else np.asarray(w0, float)
        )
        # Offline phase: M = XᵀX, N = XᵀY, eigendecomposition of M.
        # M is kept so the commit path can *downdate* it (Eq. 18's removal
        # direction) instead of recomputing the O(n·m²) gram from scratch.
        self._moment = self.features.T @ self.labels
        self._gram = self.features.T @ self.features
        self._eigen = eigendecompose(self._gram)
        # Lazy-eigen debt: commits downdate M/N immediately but defer the
        # m³ eigendecomposition to the first update (or maintain()).
        self._pending_rows: np.ndarray | None = None

    @property
    def eigen_stale(self) -> bool:
        """True while a committed removal's eigen refresh is deferred."""
        return self._pending_rows is not None

    def nbytes(self) -> int:
        """Cached state: Q, eigenvalues, M and N (Sec. 5.2 space analysis)."""
        return int(
            self._eigen.nbytes() + self._moment.nbytes + self._gram.nbytes
        )

    def compact(self, removed, features, labels: np.ndarray) -> None:
        """Fold a committed removal into the cached offline state.

        ``removed`` is expressed in this updater's (pre-commit) id space;
        ``features``/``labels`` are the already-reduced survivors.  M and N
        are downdated by the removed rows — O(Δn·m²) instead of the
        O(n·m²) a from-scratch rebuild pays — while the m³
        eigendecomposition is only marked stale: the first
        :meth:`update`/:meth:`update_many` (or
        :meth:`~repro.core.api.IncrementalTrainer.maintain`) discharges
        it via :meth:`refresh_eigen`.
        """
        removed = normalize_removed_indices(removed)
        rows = self.features[removed]
        self._gram = self._gram - rows.T @ rows
        self._moment = self._moment - rows.T @ self.labels[removed]
        self._pending_rows = (
            rows.copy()
            if self._pending_rows is None
            else np.vstack([self._pending_rows, rows])
        )
        self.features = np.asarray(features, dtype=float)
        self.labels = np.asarray(labels, dtype=float).ravel()
        self.n_samples = self.features.shape[0]

    def refresh_eigen(self, correction_limit: int | None = None) -> str | None:
        """Discharge the deferred eigen refresh (see :func:`refresh_frozen_eigen`).

        Small deferred removals (at most ``correction_limit`` rows,
        default the constructor's ``eigen_correction_limit``) correct the
        eigenvalues incrementally in the stale basis — the approximation
        Sec. 5.2 already makes per update — instead of re-eigendecomposing.
        """
        if self._pending_rows is None:
            return None
        limit = (
            self.eigen_correction_limit
            if correction_limit is None
            else correction_limit
        )
        if self._pending_rows.shape[0] <= limit:
            self._eigen = EigenSystem(
                eigenvectors=self._eigen.eigenvectors,
                eigenvalues=incremental_eigenvalues_from_rows(
                    self._eigen, self._pending_rows
                ),
            )
            mode = "correction"
        else:
            self._eigen = eigendecompose(self._gram)
            mode = "recompute"
        self._pending_rows = None
        return mode

    def update(self, removed_indices, assume_unique: bool = False) -> np.ndarray:
        """Post-deletion parameters in ``O(min(Δn,m)·m²) + O(m)`` work."""
        return self.update_many(
            [removed_indices], assume_unique=assume_unique
        )[:, 0]

    def update_many(
        self, removed_sets, assume_unique: bool = False
    ) -> np.ndarray:
        """K deletions through one vectorized recursion; ``(m, K)`` result.

        The per-request work (eigenvalue correction, moment delta) stays
        per-request; everything downstream — the diagonal recursion and the
        two basis changes — runs as K-column matrix arithmetic.
        """
        self.refresh_eigen()  # discharge any deferred commit debt first
        sets = [
            normalize_removed_indices(s, assume_unique=assume_unique)
            for s in removed_sets
        ]
        n_requests = len(sets)
        if n_requests == 0:
            return np.zeros((self.n_features, 0))
        m = self.n_features
        eigenvalues = np.empty((m, n_requests))
        moments = np.empty((m, n_requests))
        remaining = np.empty(n_requests)
        for k, removed in enumerate(sets):
            remaining[k] = self.n_samples - removed.size
            if remaining[k] <= 0:
                raise ValueError("cannot delete every training sample")
            if removed.size:
                rows = self.features[removed]
                eigenvalues[:, k] = incremental_eigenvalues_from_rows(
                    self._eigen, rows
                )
                moments[:, k] = self._moment - rows.T @ self.labels[removed]
            else:
                eigenvalues[:, k] = self._eigen.eigenvalues
                moments[:, k] = self._moment
        q = self._eigen.eigenvectors
        initial = (q.T @ self._w0)[:, None]
        bias = (2.0 / remaining) * (q.T @ moments)
        coords = gd_diagonal_recursion(
            eigenvalues,
            initial,
            bias,
            n_samples=remaining,
            n_iterations=self.n_iterations,
            learning_rate=self.learning_rate,
            regularization=self.regularization,
            gram_sign=-2.0,
        )
        return q @ coords

    def original(self) -> np.ndarray:
        """The GD approximation of the original model (no deletion)."""
        return self.update(())


class PrIUOptLogisticUpdater:
    """Two-phase updates for (binary or multinomial) logistic regression."""

    def __init__(
        self,
        store: ProvenanceStore,
        features,
        labels: np.ndarray,
        w0: np.ndarray | None = None,
        plan: ReplayPlan | None = None,
        eigen_correction_limit: int = 0,
    ) -> None:
        if store.task not in ("binary_logistic", "multinomial_logistic"):
            raise ValueError("PrIUOptLogisticUpdater requires a logistic store")
        if store.frozen is None:
            raise ValueError(
                "store has no frozen provenance; capture with freeze_at="
                "0.7 (or use plain PrIU)"
            )
        if store.frozen.eigenvectors is None:
            raise ValueError(
                "frozen provenance lacks the eigen state (sparse or "
                "large-parameter capture); use plain PrIU"
            )
        self.store = store
        self.features = np.asarray(features, dtype=float)
        self.labels = np.asarray(labels)
        self._w0 = w0
        self.eigen_correction_limit = int(eigen_correction_limit)
        # Phase 1 replays through a compiled plan; callers that already hold
        # one (the facade) pass it in so the packed index and stacked layout
        # are shared rather than rebuilt.
        self._plan = plan
        frozen = store.frozen
        self._eigen = EigenSystem(
            eigenvectors=frozen.eigenvectors, eigenvalues=frozen.eigenvalues
        )

    @property
    def eigen_stale(self) -> bool:
        """True while the frozen state's eigen refresh is deferred."""
        return bool(self.store.frozen.eigen_stale)

    def refresh_eigen(self, correction_limit: int | None = None) -> str | None:
        """Discharge the frozen state's deferred eigen refresh, if any."""
        frozen = self.store.frozen
        limit = (
            self.eigen_correction_limit
            if correction_limit is None
            else correction_limit
        )
        mode = refresh_frozen_eigen(frozen, correction_limit=limit)
        if mode is not None:
            self._eigen = EigenSystem(
                eigenvectors=frozen.eigenvectors,
                eigenvalues=frozen.eigenvalues,
            )
        return mode

    def _phase1_plan(self) -> ReplayPlan:
        if self._plan is None:
            self._plan = ReplayPlan(
                self.store, self.features, self.labels, w0=self._w0
            )
        return self._plan

    def update(self, removed_indices, assume_unique: bool = False) -> np.ndarray:
        return self.update_many(
            [removed_indices], assume_unique=assume_unique
        )[:, 0]

    def update_many(
        self, removed_sets, assume_unique: bool = False
    ) -> np.ndarray:
        """K two-phase updates at once; returns ``(n_params, K)``.

        Phase 1 is the batched GEMM replay up to ``t_s``; phase 2 stacks the
        per-request tail states and evaluates one broadcast diagonal
        recursion for all K requests.
        """
        self.refresh_eigen()  # discharge any deferred commit debt first
        sets = [
            normalize_removed_indices(s, assume_unique=assume_unique)
            for s in removed_sets
        ]
        n_requests = len(sets)
        frozen = self.store.frozen
        n_params = self._eigen.n_features
        if n_requests == 0:
            return np.zeros((n_params, 0))
        n_total = self.store.n_samples
        remaining = np.empty(n_requests)
        for k, removed in enumerate(sets):
            remaining[k] = n_total - removed.size
            if remaining[k] <= 0:
                raise ValueError("cannot delete every training sample")
        # Phase 1: batched PrIU replay up to the freeze iteration.
        w_ts = self._phase1_plan().run(sets, stop_at=frozen.t_s, assume_unique=True)
        # Phase 2: frozen-coefficient eigen recursion for the tail.
        tail = self.store.schedule.n_iterations - frozen.t_s
        if tail <= 0:
            return w_ts
        eigenvalues = np.empty((n_params, n_requests))
        moments = np.empty((n_params, n_requests))
        tail_state = (
            self._binary_tail_state
            if self.store.task == "binary_logistic"
            else self._multinomial_tail_state
        )
        for k, removed in enumerate(sets):
            eigenvalues[:, k], moments[:, k] = tail_state(removed)
        q = self._eigen.eigenvectors
        initial = q.T @ w_ts
        bias = (q.T @ moments) / remaining
        coords = gd_diagonal_recursion(
            eigenvalues,
            initial,
            bias,
            n_samples=remaining,
            n_iterations=tail,
            learning_rate=self.store.learning_rate,
            regularization=self.store.regularization,
            gram_sign=1.0,
        )
        return q @ coords

    # ---------------------------------------------------------- tail state
    def _binary_tail_state(self, removed: np.ndarray):
        frozen = self.store.frozen
        if removed.size == 0:
            return frozen.eigenvalues, frozen.moment
        rows = self.features[removed]
        slopes = frozen.slopes[removed]
        intercepts = frozen.intercepts[removed]
        y = self.labels[removed].astype(float)
        eigenvalues = incremental_eigenvalues_from_rows(
            self._eigen, rows, weights=slopes
        )
        moment = frozen.moment - rows.T @ (intercepts * y)
        return eigenvalues, moment

    def _multinomial_tail_state(self, removed: np.ndarray):
        frozen = self.store.frozen
        if removed.size == 0:
            return frozen.eigenvalues, frozen.moment
        q_classes = self.store.n_classes
        rows = self.features[removed]
        probs = frozen.probabilities[removed]
        wx = frozen.wx[removed]
        y = self.labels[removed].astype(int)
        # ΔC* in the Kronecker rank-1 expansion (see capture).
        lam = -np.einsum("ik,il->ikl", probs, probs)
        lam[:, np.arange(q_classes), np.arange(q_classes)] += probs
        evals, evecs = np.linalg.eigh(lam)
        kron_rows = np.einsum("iqk,im->ikqm", evecs, rows).reshape(
            len(removed) * q_classes, -1
        )
        weights = -evals.reshape(-1)
        eigenvalues = incremental_eigenvalues_from_rows(
            self._eigen, kron_rows, weights=weights
        )
        # ΔD* from the frozen per-sample state.
        pu = np.einsum("ik,ik->i", probs, wx)
        lam_u = probs * wx - probs * pu[:, None]
        coeff = lam_u - probs
        coeff[np.arange(len(removed)), y] += 1.0
        moment = frozen.moment - (coeff.T @ rows).ravel()
        return eigenvalues, moment
