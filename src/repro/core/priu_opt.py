"""PrIU-opt: the small-feature-space optimizations (Sec. 5.2 and 5.4).

Linear regression (Sec. 5.2)
    mb-SGD is approximated by GD (statistically equivalent per [29]); the GD
    recursion diagonalizes in the eigenbasis of ``M = XᵀX``.  The offline
    phase eigendecomposes ``M`` once; an update incrementally corrects the
    eigenvalues for ``M' = M - ΔXᵀΔX`` (Eq. 18, Ning et al. 2010) and then
    evaluates the diagonal recursion of Eq. 17 in closed form — ``O(τm)``
    arithmetic collapses to ``O(m)`` per coordinate for constant ``η``.

Logistic regression (Sec. 5.4)
    Interpolation coefficients stabilize as ``w^(t)`` converges, so new
    provenance stops being captured at ``t_s`` (rule of thumb: 70% of ``τ``).
    Phase 1 (``t < t_s``) replays PrIU; phase 2 uses the frozen full-dataset
    ``C*``/``D*`` with the same eigenvalue machinery as the linear case.
"""

from __future__ import annotations

import numpy as np

from ..linalg.eigen import (
    EigenSystem,
    eigendecompose,
    gd_diagonal_recursion,
    incremental_eigenvalues_from_rows,
)
from ..linalg.matrix_utils import is_sparse
from .priu import PrIUUpdater
from .provenance_store import ProvenanceStore


class PrIUOptLinearUpdater:
    """Eigen-based incremental updates for linear regression (Eq. 15-18)."""

    def __init__(
        self,
        features,
        labels: np.ndarray,
        n_iterations: int,
        learning_rate: float,
        regularization: float,
        w0: np.ndarray | None = None,
    ) -> None:
        if is_sparse(features):
            raise ValueError("PrIU-opt requires dense features (Sec. 5.3)")
        self.features = np.asarray(features, dtype=float)
        self.labels = np.asarray(labels, dtype=float).ravel()
        self.n_samples, self.n_features = self.features.shape
        self.n_iterations = int(n_iterations)
        self.learning_rate = float(learning_rate)
        self.regularization = float(regularization)
        self._w0 = (
            np.zeros(self.n_features) if w0 is None else np.asarray(w0, float)
        )
        # Offline phase: M = XᵀX, N = XᵀY, eigendecomposition of M.
        self._moment = self.features.T @ self.labels
        self._eigen = eigendecompose(self.features.T @ self.features)

    def nbytes(self) -> int:
        """Cached state: Q, eigenvalues and N (Sec. 5.2 space analysis)."""
        return int(self._eigen.nbytes() + self._moment.nbytes)

    def update(self, removed_indices) -> np.ndarray:
        """Post-deletion parameters in ``O(min(Δn,m)·m²) + O(m)`` work."""
        removed = np.unique(np.asarray(list(removed_indices), dtype=int))
        remaining = self.n_samples - removed.size
        if remaining <= 0:
            raise ValueError("cannot delete every training sample")
        if removed.size:
            rows = self.features[removed]
            eigenvalues = incremental_eigenvalues_from_rows(self._eigen, rows)
            moment = self._moment - rows.T @ self.labels[removed]
        else:
            eigenvalues = self._eigen.eigenvalues
            moment = self._moment
        q = self._eigen.eigenvectors
        initial = q.T @ self._w0
        bias = (2.0 / remaining) * (q.T @ moment)
        coords = gd_diagonal_recursion(
            eigenvalues,
            initial,
            bias,
            n_samples=remaining,
            n_iterations=self.n_iterations,
            learning_rate=self.learning_rate,
            regularization=self.regularization,
            gram_sign=-2.0,
        )
        return q @ coords

    def original(self) -> np.ndarray:
        """The GD approximation of the original model (no deletion)."""
        return self.update(())


class PrIUOptLogisticUpdater:
    """Two-phase updates for (binary or multinomial) logistic regression."""

    def __init__(
        self,
        store: ProvenanceStore,
        features,
        labels: np.ndarray,
        w0: np.ndarray | None = None,
    ) -> None:
        if store.task not in ("binary_logistic", "multinomial_logistic"):
            raise ValueError("PrIUOptLogisticUpdater requires a logistic store")
        if store.frozen is None:
            raise ValueError(
                "store has no frozen provenance; capture with freeze_at="
                "0.7 (or use plain PrIU)"
            )
        if store.frozen.eigenvectors is None:
            raise ValueError(
                "frozen provenance lacks the eigen state (sparse or "
                "large-parameter capture); use plain PrIU"
            )
        self.store = store
        self.features = np.asarray(features, dtype=float)
        self.labels = np.asarray(labels)
        self._phase1 = PrIUUpdater(store, features, labels, w0=w0)
        frozen = store.frozen
        self._eigen = EigenSystem(
            eigenvectors=frozen.eigenvectors, eigenvalues=frozen.eigenvalues
        )

    def update(self, removed_indices) -> np.ndarray:
        removed = np.unique(np.asarray(list(removed_indices), dtype=int))
        frozen = self.store.frozen
        n_total = self.store.n_samples
        remaining = n_total - removed.size
        if remaining <= 0:
            raise ValueError("cannot delete every training sample")
        # Phase 1: PrIU replay up to the freeze iteration.
        w_ts = self._phase1.update(removed, stop_at=frozen.t_s)
        # Phase 2: frozen-coefficient eigen recursion for the tail.
        tail = self.store.schedule.n_iterations - frozen.t_s
        if tail <= 0:
            return w_ts
        if self.store.task == "binary_logistic":
            eigenvalues, moment = self._binary_tail_state(removed)
        else:
            eigenvalues, moment = self._multinomial_tail_state(removed)
        q = self._eigen.eigenvectors
        initial = q.T @ w_ts
        bias = (q.T @ moment) / remaining
        coords = gd_diagonal_recursion(
            eigenvalues,
            initial,
            bias,
            n_samples=remaining,
            n_iterations=tail,
            learning_rate=self.store.learning_rate,
            regularization=self.store.regularization,
            gram_sign=1.0,
        )
        return q @ coords

    # ---------------------------------------------------------- tail state
    def _binary_tail_state(self, removed: np.ndarray):
        frozen = self.store.frozen
        if removed.size == 0:
            return frozen.eigenvalues, frozen.moment
        rows = self.features[removed]
        slopes = frozen.slopes[removed]
        intercepts = frozen.intercepts[removed]
        y = self.labels[removed].astype(float)
        eigenvalues = incremental_eigenvalues_from_rows(
            self._eigen, rows, weights=slopes
        )
        moment = frozen.moment - rows.T @ (intercepts * y)
        return eigenvalues, moment

    def _multinomial_tail_state(self, removed: np.ndarray):
        frozen = self.store.frozen
        if removed.size == 0:
            return frozen.eigenvalues, frozen.moment
        q_classes = self.store.n_classes
        rows = self.features[removed]
        probs = frozen.probabilities[removed]
        wx = frozen.wx[removed]
        y = self.labels[removed].astype(int)
        # ΔC* in the Kronecker rank-1 expansion (see capture).
        lam = -np.einsum("ik,il->ikl", probs, probs)
        lam[:, np.arange(q_classes), np.arange(q_classes)] += probs
        evals, evecs = np.linalg.eigh(lam)
        kron_rows = np.einsum("iqk,im->ikqm", evecs, rows).reshape(
            len(removed) * q_classes, -1
        )
        weights = -evals.reshape(-1)
        eigenvalues = incremental_eigenvalues_from_rows(
            self._eigen, kron_rows, weights=weights
        )
        # ΔD* from the frozen per-sample state.
        pu = np.einsum("ik,ik->i", probs, wx)
        lam_u = probs * wx - probs * pu[:, None]
        coeff = lam_u - probs
        coeff[np.arange(len(removed)), y] += 1.0
        moment = frozen.moment - (coeff.T @ rows).ravel()
        return eigenvalues, moment
