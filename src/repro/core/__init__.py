"""PrIU core: provenance capture, incremental updaters, facade."""

from .api import IncrementalTrainer, UpdateOutcome
from .diagnostics import (
    UpdateErrorReport,
    convergence_check,
    error_report,
    interpolation_delta,
)
from .serialization import load_store, save_store
from .capture import train_with_capture
from .priu import PrIUUpdater
from .priu_opt import PrIUOptLinearUpdater, PrIUOptLogisticUpdater
from .provenance_store import (
    FrozenProvenance,
    LinearRecord,
    LogisticRecord,
    MultinomialRecord,
    PackedOccurrenceIndex,
    ProvenanceStore,
    apply_summary,
    normalize_removed_indices,
)
from .replay_plan import ReplayPlan, compile_replay_plan

__all__ = [
    "FrozenProvenance",
    "PackedOccurrenceIndex",
    "ReplayPlan",
    "compile_replay_plan",
    "normalize_removed_indices",
    "UpdateErrorReport",
    "convergence_check",
    "error_report",
    "interpolation_delta",
    "load_store",
    "save_store",
    "IncrementalTrainer",
    "LinearRecord",
    "LogisticRecord",
    "MultinomialRecord",
    "PrIUOptLinearUpdater",
    "PrIUOptLogisticUpdater",
    "PrIUUpdater",
    "ProvenanceStore",
    "UpdateOutcome",
    "apply_summary",
    "train_with_capture",
]
