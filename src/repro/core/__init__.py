"""PrIU core: provenance capture, incremental updaters, serving facade.

The package is layered bottom-up:

* :mod:`~repro.core.provenance_store` — per-iteration summaries captured
  during training, plus the packed occurrence index removal sets resolve
  against;
* :mod:`~repro.core.capture` — :func:`train_with_capture`, the offline
  phase shadowing a GBM run;
* :mod:`~repro.core.priu` / :mod:`~repro.core.priu_opt` — the reference
  incremental updaters (Sec. 5.1–5.4);
* :mod:`~repro.core.replay_plan` — :class:`ReplayPlan`, the compiled
  structure-of-arrays layout serving K deletion requests per GEMM pass;
* :mod:`~repro.core.serialization` — :func:`save_store`/:func:`load_store`
  and :func:`save_plan`/:func:`load_plan`, the versioned on-disk formats;
* :mod:`~repro.core.maintenance` — the cost accounting / policy / report
  objects behind :meth:`IncrementalTrainer.maintain`, keeping compiled
  state asymptotically tight under commit churn;
* :mod:`~repro.core.costmodel` — :class:`CostEstimate` /
  :class:`Calibration` / :class:`CostModel`, the calibrated per-request
  cost estimator scheduling decisions consult before executing;
* :mod:`~repro.core.api` — :class:`IncrementalTrainer`, the train-once /
  delete-many facade (and its checkpoint path) everything above plugs into.

Most callers only need :class:`IncrementalTrainer`; the rest is exported
for benchmarks, tests and the serving layer (:mod:`repro.serving`).
"""

from .api import IncrementalTrainer, UpdateOutcome
from .diagnostics import (
    UpdateErrorReport,
    convergence_check,
    error_report,
    interpolation_delta,
)
from .serialization import (
    CheckpointCorruptionError,
    PlanCache,
    load_plan,
    load_store,
    recover_checkpoint,
    save_plan,
    save_store,
)
from .capture import train_with_capture
from .costmodel import Calibration, CostEstimate, CostModel
from .maintenance import MaintenanceCost, MaintenancePolicy, MaintenanceReport
from .priu import PrIUUpdater
from .priu_opt import (
    PrIUOptLinearUpdater,
    PrIUOptLogisticUpdater,
    refresh_frozen_eigen,
)
from .provenance_store import (
    CommitReceipt,
    FrozenProvenance,
    LinearRecord,
    LogisticRecord,
    MultinomialRecord,
    PackedOccurrenceIndex,
    ProvenanceStore,
    apply_summary,
    normalize_removed_indices,
)
from .replay_plan import ReplayPlan, compile_replay_plan

__all__ = [
    "Calibration",
    "CheckpointCorruptionError",
    "CommitReceipt",
    "CostEstimate",
    "CostModel",
    "recover_checkpoint",
    "FrozenProvenance",
    "MaintenanceCost",
    "MaintenancePolicy",
    "MaintenanceReport",
    "refresh_frozen_eigen",
    "PackedOccurrenceIndex",
    "PlanCache",
    "ReplayPlan",
    "compile_replay_plan",
    "normalize_removed_indices",
    "UpdateErrorReport",
    "convergence_check",
    "error_report",
    "interpolation_delta",
    "load_plan",
    "load_store",
    "save_plan",
    "save_store",
    "IncrementalTrainer",
    "LinearRecord",
    "LogisticRecord",
    "MultinomialRecord",
    "PrIUOptLinearUpdater",
    "PrIUOptLogisticUpdater",
    "PrIUUpdater",
    "ProvenanceStore",
    "UpdateOutcome",
    "apply_summary",
    "train_with_capture",
]
