"""Persisting provenance stores.

The offline capture can be expensive (it shadows a full training run), so a
real deployment saves the store next to the model checkpoint and reloads it
when a deletion request arrives — possibly in a different process, days
later.  Everything is packed into a single ``.npz`` (numpy archive): batch
arrays, summaries (dense or SVD factors), per-sample coefficients, frozen
PrIU-opt state, and the schedule metadata needed to rebuild it bit-for-bit.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..linalg.svd import TruncatedSummary
from ..models.batching import BatchSchedule
from .provenance_store import (
    FrozenProvenance,
    LinearRecord,
    LogisticRecord,
    MultinomialRecord,
    ProvenanceStore,
)

_FORMAT_VERSION = 1

_FROZEN_FIELDS = (
    "slopes",
    "intercepts",
    "probabilities",
    "wx",
    "gram",
    "moment",
    "eigenvectors",
    "eigenvalues",
)


def _pack_summary(arrays: dict, key: str, summary) -> str:
    """Store a summary under ``key``; returns its kind tag."""
    if summary is None:
        return "none"
    if isinstance(summary, TruncatedSummary):
        arrays[f"{key}_left"] = summary.left
        arrays[f"{key}_right"] = summary.right
        return "svd"
    arrays[key] = np.asarray(summary)
    return "dense"


def _unpack_summary(archive, key: str, kind: str):
    if kind == "none":
        return None
    if kind == "svd":
        return TruncatedSummary(
            left=archive[f"{key}_left"], right=archive[f"{key}_right"]
        )
    return archive[key]


def save_store(store: ProvenanceStore, path: str | Path) -> Path:
    """Serialize a provenance store to a ``.npz`` archive."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    summary_kinds: list[str] = []
    for t, record in enumerate(store.records):
        arrays[f"batch_{t}"] = record.batch
        summary_kinds.append(_pack_summary(arrays, f"summary_{t}", record.summary))
        arrays[f"moment_{t}"] = record.moment
        if isinstance(record, LogisticRecord):
            arrays[f"slopes_{t}"] = record.slopes
            arrays[f"intercepts_{t}"] = record.intercepts
        elif isinstance(record, MultinomialRecord):
            arrays[f"probs_{t}"] = record.probabilities
            arrays[f"wx_{t}"] = record.wx

    frozen_meta: list = []
    if store.frozen is not None:
        frozen_meta = [store.frozen.t_s, int(store.frozen.weights_at_ts_available)]
        for field in _FROZEN_FIELDS:
            value = getattr(store.frozen, field)
            if value is not None:
                arrays[f"frozen_{field}"] = value

    arrays["__meta__"] = np.array(
        [
            str(_FORMAT_VERSION),
            store.task,
            str(store.learning_rate),
            str(store.regularization),
            str(store.n_samples),
            str(store.n_features),
            str(store.n_classes),
            store.compression,
            str(store.epsilon),
            str(int(store.sparse_mode)),
            str(len(store.records)),
        ]
    )
    arrays["__schedule__"] = np.array(
        [
            str(store.schedule.n_samples),
            str(store.schedule.batch_size),
            str(store.schedule.n_iterations),
            str(store.schedule.seed),
            store.schedule.kind,
        ]
    )
    arrays["__summary_kinds__"] = np.array(summary_kinds)
    arrays["__frozen_meta__"] = np.array([str(v) for v in frozen_meta])
    np.savez_compressed(path, **arrays)
    return path


def load_store(path: str | Path) -> ProvenanceStore:
    """Reload a provenance store saved by :func:`save_store`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        meta = archive["__meta__"]
        version = int(meta[0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported store format version: {version}")
        task = str(meta[1])
        sched_meta = archive["__schedule__"]
        schedule = BatchSchedule(
            n_samples=int(sched_meta[0]),
            batch_size=int(sched_meta[1]),
            n_iterations=int(sched_meta[2]),
            seed=int(sched_meta[3]),
            kind=str(sched_meta[4]),
        )
        store = ProvenanceStore(
            task=task,
            schedule=schedule,
            learning_rate=float(meta[2]),
            regularization=float(meta[3]),
            n_samples=int(meta[4]),
            n_features=int(meta[5]),
            n_classes=int(meta[6]),
            compression=str(meta[7]),
            epsilon=float(meta[8]),
            sparse_mode=bool(int(meta[9])),
        )
        n_records = int(meta[10])
        kinds = [str(k) for k in archive["__summary_kinds__"]]
        for t in range(n_records):
            batch = archive[f"batch_{t}"]
            summary = _unpack_summary(archive, f"summary_{t}", kinds[t])
            moment = archive[f"moment_{t}"]
            if task == "linear":
                store.add(LinearRecord(batch=batch, summary=summary, moment=moment))
            elif task == "binary_logistic":
                store.add(
                    LogisticRecord(
                        batch=batch,
                        slopes=archive[f"slopes_{t}"],
                        intercepts=archive[f"intercepts_{t}"],
                        summary=summary,
                        moment=moment,
                    )
                )
            else:
                store.add(
                    MultinomialRecord(
                        batch=batch,
                        probabilities=archive[f"probs_{t}"],
                        wx=archive[f"wx_{t}"],
                        summary=summary,
                        moment=moment,
                    )
                )
        frozen_meta = [str(v) for v in archive["__frozen_meta__"]]
        if frozen_meta:
            fields = {
                field: (
                    archive[f"frozen_{field}"]
                    if f"frozen_{field}" in archive.files
                    else None
                )
                for field in _FROZEN_FIELDS
            }
            store.frozen = FrozenProvenance(
                t_s=int(frozen_meta[0]),
                weights_at_ts_available=bool(int(frozen_meta[1])),
                **fields,
            )
    return store
