"""Persisting provenance stores and compiled replay plans.

The offline capture can be expensive (it shadows a full training run), so a
real deployment saves the store next to the model checkpoint and reloads it
when a deletion request arrives — possibly in a different process, days
later.  Two artifacts cover the whole serving state:

* :func:`save_store` / :func:`load_store` — the provenance store itself,
  packed into a single compressed ``.npz``: batch arrays, summaries (dense
  or SVD factors), per-sample coefficients, frozen PrIU-opt state, and the
  schedule metadata needed to rebuild it bit-for-bit.
* :func:`save_plan` / :func:`load_plan` — the *compiled*
  :class:`~repro.core.replay_plan.ReplayPlan` layout (packed occurrence
  index, stacked moments, slot-indexed interpolation flats), written as an
  **uncompressed** ``.npz`` so a serving process can memory-map the arrays
  straight out of the archive (``numpy`` itself ignores ``mmap_mode`` for
  zip archives, so the loader maps each stored member by its byte offset).
  A fresh process then goes checkpoint → plan → first answered request
  without re-running capture *or* compilation.

Both formats carry an explicit version number; loaders reject versions they
do not understand instead of misinterpreting the layout (rules in
``docs/architecture.md``).

Durability (the failure model lives in ``docs/architecture.md``, "Failure
model & recovery"):

* Every archive write goes write-temp → flush → fsync → atomic rename, so
  a crash at any point leaves either the old file or the new one on disk,
  never a torn mix.
* Archives embed a per-member content checksum (``__checksums__``).
  Loaders verify members as they read them — eagerly for everything
  :func:`load_store` and :func:`read_checkpoint_metadata` touch, *lazily*
  for the plan members :func:`load_plan` memory-maps (the whole point of
  mapping is not reading the bytes up front; the check runs on the plan's
  first replay instead).  A mismatch raises
  :class:`CheckpointCorruptionError` — bit rot is *detected*, never served.
* Multi-file checkpoints (``store.npz`` + ``plan.npz``) commit through a
  sidecar journal (:func:`commit_checkpoint` / :func:`recover_checkpoint`)
  so the pair flips old→new atomically even across two renames.

All crash points funnel through a module fault hook
(:func:`set_fault_hook`) so ``repro.testing.faults`` can kill or fail the
write at every step and tests can prove the old-or-new guarantee.
"""

from __future__ import annotations

import ast
import os
import threading
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..linalg.svd import TruncatedSummary
from ..models.batching import BatchSchedule
from .provenance_store import (
    CommitReceipt,
    FrozenProvenance,
    LinearRecord,
    LogisticRecord,
    MultinomialRecord,
    ProvenanceStore,
)
from .replay_plan import ReplayPlan

# Store format 2 (PR 3) adds commit bookkeeping: ``__meta__`` grows an
# ``n_original_samples`` entry, a ``__deletion_log__`` array records the
# cumulative committed removals in original id space, and the schedule kind
# may be ``"materialized"`` (batches reconstructed from the records rather
# than regenerated from the seed).  Format 3 (PR 5) adds the maintenance
# and audit state: ``__receipts__`` (per-commit audit receipts, one row per
# commit, ids recovered from the deletion log), ``__svd_corrections__``
# (per-record correction-column counters), and the frozen PrIU-opt lazy
# eigen state (``__frozen_meta__`` grows an ``eigen_stale`` flag and the
# deferred ``pending_rows``/``pending_weights`` arrays persist alongside
# the other frozen fields).  Format-1/2 archives still load.
_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)
_PLAN_FORMAT_VERSION = 1
# Archives carrying a ``__checksums__`` member (any version from here on)
# get their members verified on load; older archives load unchecked, as
# before.  The member itself is not a format break — readers that predate
# it ignore double-underscore members they don't know — so the store and
# plan version numbers are unchanged.
_CHECKSUMS_MEMBER = "__checksums__"

# Sidecar journal for multi-file checkpoint commits (store.npz + plan.npz
# flipped old->new atomically): present means "roll the staged *.new files
# forward", absent means any stray staged file belongs to an interrupted
# save and is discarded.
CHECKPOINT_JOURNAL = "checkpoint.journal"
_STAGED_SUFFIX = ".new"


class CheckpointCorruptionError(ValueError):
    """A checkpoint artifact failed structural or checksum validation.

    Raised instead of silently serving wrong answers when an archive is
    truncated, bit-rotten, or torn.  Subclasses :class:`ValueError` so
    pre-existing ``except ValueError`` checkpoint-validation handlers
    keep working.
    """


# ------------------------------------------------------------- fault hook
# A single injection point for crash/fault testing: every durability-
# relevant step below announces itself as ``_fault("<tag>.<step>", path)``.
# The production hook is None (zero overhead beyond one global read);
# ``repro.testing.faults.FaultInjector`` installs itself here to kill or
# fail the write mid-protocol.
_FAULT_HOOK = None


def set_fault_hook(hook):
    """Install a ``hook(event: str, path: Path)`` callable; returns the
    previous hook (restore it when done)."""
    global _FAULT_HOOK
    previous = _FAULT_HOOK
    _FAULT_HOOK = hook
    return previous


def _fault(event: str, path) -> None:
    if _FAULT_HOOK is not None:
        _FAULT_HOOK(event, path)


# ---------------------------------------------------------- durable writes
def _temp_beside(path: Path) -> Path:
    """The temp-file path for a durable write of ``path``.

    The temp file must live in the *destination* directory, never in
    ``$TMPDIR``: ``os.replace`` only commits atomically within one
    filesystem, and a cross-device rename raises ``EXDEV`` outright.
    Every durable write in this module (and any new write path added to
    the project) goes through this helper so the invariant holds
    regardless of where the environment points its scratch space.
    """
    return path.with_name(path.name + ".tmp")


def _fsync_dir(directory: Path) -> None:
    """Flush a directory's entry table (best effort; no-op off POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _durable_savez(
    path: Path, arrays: dict, *, compressed: bool, tag: str
) -> None:
    """Write an ``.npz`` crash-atomically: temp file → fsync → rename.

    The archive is written through an open file handle (``np.savez``
    appends ``.npz`` to suffix-less *paths* but honors handles exactly),
    fsynced, then renamed over ``path`` with ``os.replace`` — atomic on
    POSIX, so a reader never observes a half-written archive and a crash
    leaves either the old file or the new one.  The temp file is left
    behind on a crash by design (it is the *evidence* of an interrupted
    write); :func:`recover_checkpoint` sweeps it.
    """
    temp = _temp_beside(path)
    _fault(f"{tag}.begin", path)
    with open(temp, "wb") as handle:
        if compressed:
            np.savez_compressed(handle, **arrays)
        else:
            np.savez(handle, **arrays)
        handle.flush()
        _fault(f"{tag}.temp-written", temp)
        os.fsync(handle.fileno())
    _fault(f"{tag}.temp-synced", temp)
    os.replace(temp, path)
    _fault(f"{tag}.renamed", path)
    _fsync_dir(path.parent)


# ---------------------------------------------------------------- checksums
def _content_digest(array: np.ndarray) -> str:
    """A dtype/shape-tagged CRC32 of one member's raw bytes.

    Computed over the *logical* content (contiguous buffer + dtype +
    shape), not the zip member's compressed bytes, so the same digest
    verifies both a decompressed read (:func:`load_store`) and a
    memory-mapped view (:func:`load_plan`) — the mmap path bypasses the
    zip layer's own CRC entirely, which is why this exists.
    """
    array = np.asarray(array)
    tag = f"{array.dtype.str}|{array.shape}".encode()
    crc = zlib.crc32(tag)
    crc = zlib.crc32(np.ascontiguousarray(array).tobytes(), crc)
    return f"{crc:08x}"


def _checksums_member(arrays: dict) -> np.ndarray:
    """``name=digest`` lines for every member, as a string array."""
    return np.array(
        sorted(f"{name}={_content_digest(value)}" for name, value in arrays.items())
    )


def _parse_checksums(archive) -> dict[str, str] | None:
    """The archive's recorded digests, or None for pre-checksum archives."""
    if _CHECKSUMS_MEMBER not in archive.files:
        return None
    table: dict[str, str] = {}
    for line in archive[_CHECKSUMS_MEMBER]:
        name, _, digest = str(line).partition("=")
        table[name] = digest
    return table


def _verify_digest(
    name: str, value: np.ndarray, checksums: dict[str, str], path: Path
) -> None:
    """Check one member against the recorded digest table."""
    expected = checksums.get(name)
    if expected is None:
        raise CheckpointCorruptionError(
            f"checkpoint member {name!r} of {path} has no recorded checksum"
        )
    actual = _content_digest(value)
    if actual != expected:
        raise CheckpointCorruptionError(
            f"checkpoint member {name!r} of {path} is corrupted: "
            f"content digest {actual} != recorded {expected}"
        )


class _VerifyingArchive:
    """Wrap an open ``NpzFile``: verify each member's digest on first read.

    Members are checked as the loader pulls them (no double decompression)
    and :meth:`verify_remaining` sweeps whatever the loader never touched,
    so a corrupted-but-unused member still fails the load instead of
    lurking until a later code path needs it.  With no digest table (an
    old archive) it is a transparent pass-through.
    """

    def __init__(self, archive, checksums: dict[str, str] | None, path: Path):
        self._archive = archive
        self._checksums = checksums
        self._path = path
        self._verified: set[str] = set()

    @property
    def files(self):
        return self._archive.files

    def __getitem__(self, name: str) -> np.ndarray:
        value = self._archive[name]
        if self._checksums is not None and name not in self._verified:
            self._verified.add(name)
            _verify_digest(name, value, self._checksums, self._path)
        return value

    def verify_remaining(self) -> None:
        if self._checksums is None:
            return
        for name in self._checksums:
            if name in self._verified:
                continue
            try:
                value = self._archive[name]
            except KeyError:
                raise CheckpointCorruptionError(
                    f"checkpoint member {name!r} missing from {self._path}"
                ) from None
            self._verified.add(name)
            _verify_digest(name, value, self._checksums, self._path)


_UNREADABLE = (zipfile.BadZipFile, zlib.error, EOFError, OSError)


def _unreadable(path: Path, exc: Exception) -> CheckpointCorruptionError:
    return CheckpointCorruptionError(
        f"checkpoint archive {path} is unreadable "
        f"(truncated or torn write?): {exc}"
    )

_FROZEN_FIELDS = (
    "slopes",
    "intercepts",
    "probabilities",
    "wx",
    "gram",
    "moment",
    "eigenvectors",
    "eigenvalues",
    "pending_rows",
    "pending_weights",
)

# __receipts__ columns (float64; the ids live in the deletion log slice).
_RECEIPT_COLUMNS = (
    "log_start",
    "log_end",
    "store_version_before",
    "n_samples_before",
    "n_samples_after",
    "timestamp",
)

# Canonical file names inside a checkpoint directory (written by
# ``IncrementalTrainer.save_checkpoint``, re-exported from ``core.api``).
STORE_FILENAME = "store.npz"
PLAN_FILENAME = "plan.npz"


# ------------------------------------------------------- journaled commits
def staged_path(directory: str | Path, member: str) -> Path:
    """Where a member is staged before a journaled commit renames it."""
    return Path(directory) / (member + _STAGED_SUFFIX)


def _replay_journal(directory: Path, members: list[str]) -> None:
    """Rename every staged member into place, then clear the journal.

    Idempotent: a member whose staged file is already gone was renamed by
    an earlier (interrupted) replay and is skipped, so crash-during-
    recovery recovers too.
    """
    journal = directory / CHECKPOINT_JOURNAL
    for member in members:
        staged = directory / (member + _STAGED_SUFFIX)
        _fault(f"commit.rename.{member}", staged)
        if staged.exists():
            os.replace(staged, directory / member)
    _fault("commit.clear-journal", journal)
    journal.unlink(missing_ok=True)
    _fsync_dir(directory)
    _fault("commit.done", directory)


def commit_checkpoint(directory: str | Path, members: list[str]) -> None:
    """Atomically flip staged ``<member>.new`` files into place.

    The journal (itself written durably) is the commit point: once it
    lands, :func:`recover_checkpoint` rolls the staged files forward even
    if the process dies mid-rename; before it lands, recovery discards
    them.  Either way a reader sees the complete old checkpoint or the
    complete new one.
    """
    directory = Path(directory)
    journal = directory / CHECKPOINT_JOURNAL
    temp = _temp_beside(journal)
    payload = "\n".join(["v1", *members]) + "\n"
    _fault("journal.begin", journal)
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        _fault("journal.temp-written", temp)
        os.fsync(handle.fileno())
    _fault("journal.temp-synced", temp)
    os.replace(temp, journal)
    _fault("journal.renamed", journal)
    _fsync_dir(directory)
    _replay_journal(directory, members)


def recover_checkpoint(directory: str | Path) -> str | None:
    """Settle an interrupted checkpoint save in ``directory``.

    With a journal present the staged files are rolled *forward* (the
    save had committed); without one, stray ``*.tmp``/``*.new`` files are
    swept (the save never reached its commit point, the old checkpoint
    stands).  Returns ``"rolled-forward"``, ``"cleaned"`` or None
    (nothing to do).  Safe to call on every load; errors (read-only
    media) are swallowed — recovery is an optimization of the next save,
    never a load-blocker.
    """
    directory = Path(directory)
    action: str | None = None
    try:
        if not directory.is_dir():
            return None
        journal = directory / CHECKPOINT_JOURNAL
        committed = journal.exists()
        if committed:
            lines = journal.read_text(encoding="utf-8").splitlines()
            members = [line for line in lines[1:] if line]
            _replay_journal(directory, members)
            action = "rolled-forward"
        for stray in directory.iterdir():
            # Staged files are discarded only when no commit point was
            # reached; after a roll-forward any surviving ``.new`` file
            # belongs to a member the journal never listed, so it stays
            # for the next save's own recovery pass to judge.
            if stray.name.endswith(".tmp") or (
                not committed and stray.name.endswith(_STAGED_SUFFIX)
            ):
                stray.unlink(missing_ok=True)
                action = action or "cleaned"
    except OSError:
        return action
    return action


def _pack_summary(arrays: dict, key: str, summary) -> str:
    """Store a summary under ``key``; returns its kind tag."""
    if summary is None:
        return "none"
    if isinstance(summary, TruncatedSummary):
        arrays[f"{key}_left"] = summary.left
        arrays[f"{key}_right"] = summary.right
        return "svd"
    arrays[key] = np.asarray(summary)
    return "dense"


def _unpack_summary(archive, key: str, kind: str):
    if kind == "none":
        return None
    if kind == "svd":
        return TruncatedSummary(
            left=archive[f"{key}_left"], right=archive[f"{key}_right"]
        )
    return archive[key]


def save_store(store: ProvenanceStore, path: str | Path) -> Path:
    """Serialize a provenance store to a ``.npz`` archive."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    summary_kinds: list[str] = []
    for t, record in enumerate(store.records):
        arrays[f"batch_{t}"] = record.batch
        summary_kinds.append(_pack_summary(arrays, f"summary_{t}", record.summary))
        arrays[f"moment_{t}"] = record.moment
        if isinstance(record, LogisticRecord):
            arrays[f"slopes_{t}"] = record.slopes
            arrays[f"intercepts_{t}"] = record.intercepts
        elif isinstance(record, MultinomialRecord):
            arrays[f"probs_{t}"] = record.probabilities
            arrays[f"wx_{t}"] = record.wx

    frozen_meta: list = []
    if store.frozen is not None:
        frozen_meta = [
            store.frozen.t_s,
            int(store.frozen.weights_at_ts_available),
            int(store.frozen.eigen_stale),
        ]
        for field in _FROZEN_FIELDS:
            value = getattr(store.frozen, field)
            if value is not None:
                arrays[f"frozen_{field}"] = value

    arrays["__meta__"] = np.array(
        [
            str(_FORMAT_VERSION),
            store.task,
            str(store.learning_rate),
            str(store.regularization),
            str(store.n_samples),
            str(store.n_features),
            str(store.n_classes),
            store.compression,
            str(store.epsilon),
            str(int(store.sparse_mode)),
            str(len(store.records)),
            # v2: sample count of the original capture run ("none" while
            # no deletion has ever been committed).
            "none"
            if store.n_original_samples is None
            else str(store.n_original_samples),
        ]
    )
    if store.deletion_log is not None:
        arrays["__deletion_log__"] = store.deletion_log
    if store.commit_receipts:
        arrays["__receipts__"] = np.array(
            [
                [getattr(receipt, column) for column in _RECEIPT_COLUMNS]
                for receipt in store.commit_receipts
            ],
            dtype=float,
        )
    if store.svd_correction_columns is not None:
        arrays["__svd_corrections__"] = store.svd_correction_columns
    arrays["__schedule__"] = np.array(
        [
            str(store.schedule.n_samples),
            str(store.schedule.batch_size),
            str(store.schedule.n_iterations),
            str(store.schedule.seed),
            store.schedule.kind,
        ]
    )
    arrays["__summary_kinds__"] = np.array(summary_kinds)
    arrays["__frozen_meta__"] = np.array([str(v) for v in frozen_meta])
    arrays[_CHECKSUMS_MEMBER] = _checksums_member(arrays)
    _durable_savez(path, arrays, compressed=True, tag="store")
    return path


def load_store(path: str | Path) -> ProvenanceStore:
    """Reload a provenance store saved by :func:`save_store`.

    Every member read is verified against the archive's recorded content
    digests (when present), and members the layout never touches are
    swept at the end — a corrupted store raises
    :class:`CheckpointCorruptionError`, it never loads wrong.
    """
    path = Path(path)
    try:
        return _load_store_verified(path)
    except FileNotFoundError:
        raise
    except _UNREADABLE as exc:
        raise _unreadable(path, exc) from exc
    except KeyError as exc:
        raise CheckpointCorruptionError(
            f"checkpoint archive {path} is missing member {exc}"
        ) from exc


def _load_store_verified(path: Path) -> ProvenanceStore:
    with np.load(path, allow_pickle=False) as npz:
        archive = _VerifyingArchive(npz, _parse_checksums(npz), path)
        meta = archive["__meta__"]
        version = int(meta[0])
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported store format version: {version}")
        task = str(meta[1])
        sched_meta = archive["__schedule__"]
        sched_kind = str(sched_meta[4])
        if sched_kind == "materialized":
            # Compacted batches cannot be regenerated from the seed; they
            # are rebuilt from the loaded records below.
            schedule = None
        else:
            schedule = BatchSchedule(
                n_samples=int(sched_meta[0]),
                batch_size=int(sched_meta[1]),
                n_iterations=int(sched_meta[2]),
                seed=int(sched_meta[3]),
                kind=sched_kind,
            )
        store = ProvenanceStore(
            task=task,
            schedule=schedule,
            learning_rate=float(meta[2]),
            regularization=float(meta[3]),
            n_samples=int(meta[4]),
            n_features=int(meta[5]),
            n_classes=int(meta[6]),
            compression=str(meta[7]),
            epsilon=float(meta[8]),
            sparse_mode=bool(int(meta[9])),
        )
        n_records = int(meta[10])
        kinds = [str(k) for k in archive["__summary_kinds__"]]
        for t in range(n_records):
            batch = archive[f"batch_{t}"]
            summary = _unpack_summary(archive, f"summary_{t}", kinds[t])
            moment = archive[f"moment_{t}"]
            if task == "linear":
                store.add(LinearRecord(batch=batch, summary=summary, moment=moment))
            elif task == "binary_logistic":
                store.add(
                    LogisticRecord(
                        batch=batch,
                        slopes=archive[f"slopes_{t}"],
                        intercepts=archive[f"intercepts_{t}"],
                        summary=summary,
                        moment=moment,
                    )
                )
            else:
                store.add(
                    MultinomialRecord(
                        batch=batch,
                        probabilities=archive[f"probs_{t}"],
                        wx=archive[f"wx_{t}"],
                        summary=summary,
                        moment=moment,
                    )
                )
        if schedule is None:
            store.schedule = BatchSchedule(
                n_samples=store.n_samples,
                batch_size=int(sched_meta[1]),
                n_iterations=len(store.records),
                seed=int(sched_meta[3]),
                kind="materialized",
                batches=[record.batch for record in store.records],
            )
        if version >= 2:
            original = str(meta[11])
            store.n_original_samples = (
                None if original == "none" else int(original)
            )
            if "__deletion_log__" in archive.files:
                store.deletion_log = archive["__deletion_log__"]
        if version >= 3:
            if "__svd_corrections__" in archive.files:
                store.svd_correction_columns = archive["__svd_corrections__"]
            if "__receipts__" in archive.files:
                for row in archive["__receipts__"]:
                    fields = dict(zip(_RECEIPT_COLUMNS, row))
                    log_start = int(fields["log_start"])
                    log_end = int(fields["log_end"])
                    store.commit_receipts.append(
                        CommitReceipt(
                            index=len(store.commit_receipts),
                            removed_original_ids=np.asarray(
                                store.deletion_log[log_start:log_end],
                                dtype=np.int64,
                            ),
                            log_start=log_start,
                            log_end=log_end,
                            store_version_before=int(
                                fields["store_version_before"]
                            ),
                            n_samples_before=int(fields["n_samples_before"]),
                            n_samples_after=int(fields["n_samples_after"]),
                            timestamp=float(fields["timestamp"]),
                        )
                    )
        frozen_meta = [str(v) for v in archive["__frozen_meta__"]]
        if frozen_meta:
            fields = {
                field: (
                    archive[f"frozen_{field}"]
                    if f"frozen_{field}" in archive.files
                    else None
                )
                for field in _FROZEN_FIELDS
            }
            store.frozen = FrozenProvenance(
                t_s=int(frozen_meta[0]),
                weights_at_ts_available=bool(int(frozen_meta[1])),
                eigen_stale=(
                    bool(int(frozen_meta[2])) if len(frozen_meta) > 2 else False
                ),
                **fields,
            )
        # Sweep members the layout above never touched (e.g. summary
        # members of a kind this task doesn't use): corruption anywhere
        # in the archive fails the load.
        archive.verify_remaining()
    return store


# -------------------------------------------------------- checkpoint metadata
@dataclass(frozen=True)
class CheckpointMetadata:
    """The cheap-to-read identity of a saved checkpoint.

    Everything a :class:`~repro.serving.fleet.ModelRegistry` needs to
    validate a registration and bound removal ids *without* paying for a
    full :func:`load_store` — task, shapes, the live ``n_samples`` (post
    commits), and whether a compiled plan archive sits next to the store.
    Read via :func:`read_checkpoint_metadata`.
    """

    store_path: Path
    plan_path: Path | None
    format_version: int
    task: str
    n_samples: int
    n_features: int
    n_classes: int
    n_iterations: int
    n_original_samples: int | None
    sparse_mode: bool

    def as_dict(self) -> dict:
        """JSON-serializable form (registry describe / fleet benchmarks)."""
        return {
            "store_path": str(self.store_path),
            "plan_path": None if self.plan_path is None else str(self.plan_path),
            "format_version": self.format_version,
            "task": self.task,
            "n_samples": self.n_samples,
            "n_features": self.n_features,
            "n_classes": self.n_classes,
            "n_iterations": self.n_iterations,
            "n_original_samples": self.n_original_samples,
            "sparse_mode": self.sparse_mode,
        }


def read_checkpoint_metadata(path: str | Path) -> CheckpointMetadata:
    """Read a checkpoint's ``__meta__`` block without loading its arrays.

    ``path`` is a checkpoint directory (containing ``store.npz`` and
    optionally ``plan.npz``) or a store archive itself — the same
    addressing :meth:`~repro.core.api.IncrementalTrainer.from_checkpoint`
    accepts.  Only the small metadata members of the zip are decompressed;
    the record arrays stay on disk, so this is safe to call for every
    registered model of a large fleet at startup.
    """
    path = Path(path)
    if path.is_dir():
        # Settle any interrupted save first: roll a journaled commit
        # forward, sweep pre-commit strays — so the metadata read below
        # always describes a complete old-or-new checkpoint.
        recover_checkpoint(path)
        store_path = path / STORE_FILENAME
        plan_candidate = path / PLAN_FILENAME
        plan_path = plan_candidate if plan_candidate.exists() else None
    else:
        store_path = path
        plan_path = None
    if not store_path.exists():
        raise FileNotFoundError(f"no store archive at {store_path}")
    try:
        return _read_metadata_verified(store_path, plan_path)
    except _UNREADABLE as exc:
        raise _unreadable(store_path, exc) from exc
    except KeyError as exc:
        raise CheckpointCorruptionError(
            f"checkpoint archive {store_path} is missing member {exc}"
        ) from exc


def _read_metadata_verified(
    store_path: Path, plan_path: Path | None
) -> CheckpointMetadata:
    with np.load(store_path, allow_pickle=False) as npz:
        archive = _VerifyingArchive(npz, _parse_checksums(npz), store_path)
        meta = archive["__meta__"]
        version = int(meta[0])
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported store format version: {version}")
        n_original: int | None = None
        if version >= 2:
            raw = str(meta[11])
            n_original = None if raw == "none" else int(raw)
        return CheckpointMetadata(
            store_path=store_path,
            plan_path=plan_path,
            format_version=version,
            task=str(meta[1]),
            n_samples=int(meta[4]),
            n_features=int(meta[5]),
            n_classes=int(meta[6]),
            n_iterations=int(meta[10]),
            n_original_samples=n_original,
            sparse_mode=bool(int(meta[9])),
        )


# --------------------------------------------------------------- replay plans
def save_plan(
    plan: ReplayPlan, path: str | Path, weights: np.ndarray | None = None
) -> Path:
    """Serialize a compiled replay plan to an (uncompressed) ``.npz``.

    Persists the derived structure-of-arrays state enumerated by
    :meth:`~repro.core.replay_plan.ReplayPlan.state_arrays` — summaries and
    sparse batch blocks stay in the store / feature matrix and are rebound
    at load time.  ``weights`` optionally embeds the fitted model's final
    parameter vector so :meth:`~repro.core.api.IncrementalTrainer.\
from_checkpoint` can restore ``weights_`` without replaying anything.

    The archive is written *uncompressed* on purpose: stored zip members
    are contiguous byte ranges, which lets :func:`load_plan` memory-map
    them (``mmap_mode="r"``) instead of copying into RAM.
    """
    if not plan.supported:
        raise ValueError(
            "this plan has no compiled state to persist (sparse multinomial "
            "replays are unsupported); save only the store instead"
        )
    path = Path(path)
    arrays = dict(plan.state_arrays())
    if weights is not None:
        arrays["final_weights"] = np.asarray(weights, dtype=float)
    meta = dict(plan.state_meta())
    meta["format"] = str(_PLAN_FORMAT_VERSION)
    keys = sorted(meta)
    arrays["__plan_meta_keys__"] = np.array(keys)
    arrays["__plan_meta_values__"] = np.array([meta[k] for k in keys])
    arrays[_CHECKSUMS_MEMBER] = _checksums_member(arrays)
    _durable_savez(path, arrays, compressed=False, tag="plan")
    return path


_NPY_MAGIC = b"\x93NUMPY"


def _parse_npy_header(handle):
    """Parse a ``.npy`` header at the handle's position, any format version.

    ``np.save`` writes format 1.0 by default but *silently* upgrades to
    2.0 when the header dict exceeds 65535 bytes (huge structured dtypes)
    and to 3.0 when a field name needs utf-8 — so an offset parser that
    assumes the v1 layout computes a data offset that is short by exactly
    two bytes and maps garbage.  The header-length field is ``uint16`` in
    v1 and ``uint32`` in v2/v3; the dict itself is latin-1 text before
    v3, utf-8 from v3 on.  Returns ``(shape, fortran_order, dtype)`` with
    the handle left at the first data byte, or ``None`` for anything that
    is not a well-formed ``.npy`` header of a known major version.
    """
    magic = handle.read(8)
    if len(magic) != 8 or magic[:6] != _NPY_MAGIC:
        return None
    major = magic[6]
    if major == 1:
        length_width = 2
    elif major in (2, 3):
        length_width = 4
    else:
        return None
    raw_length = handle.read(length_width)
    if len(raw_length) != length_width:
        return None
    header_length = int.from_bytes(raw_length, "little")
    header = handle.read(header_length)
    if len(header) != header_length:
        return None
    try:
        text = header.decode("utf-8" if major >= 3 else "latin1")
        fields = ast.literal_eval(text.strip())
        shape = tuple(int(n) for n in fields["shape"])
        fortran = bool(fields["fortran_order"])
        dtype = np.lib.format.descr_to_dtype(fields["descr"])
    except (ValueError, SyntaxError, KeyError, TypeError):
        return None
    return shape, fortran, dtype


def _mmap_member(handle, path: Path, info: zipfile.ZipInfo) -> np.ndarray | None:
    """Memory-map one stored zip member's ``.npy`` payload, or None."""
    handle.seek(info.header_offset)
    local_header = handle.read(30)
    if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
        return None
    name_length = int.from_bytes(local_header[26:28], "little")
    extra_length = int.from_bytes(local_header[28:30], "little")
    handle.seek(info.header_offset + 30 + name_length + extra_length)
    parsed = _parse_npy_header(handle)
    if parsed is None:
        return None
    shape, fortran, dtype = parsed
    if dtype.hasobject or 0 in shape:
        return None
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=handle.tell(),
        shape=shape,
        order="F" if fortran else "C",
    )


def _mmap_npz_arrays(path: Path, names: list[str]) -> dict[str, np.ndarray]:
    """Memory-map every mappable member of an ``.npz``; best effort.

    ``np.load(..., mmap_mode="r")`` silently ignores the request for zip
    archives, but members written by ``np.savez`` (``ZIP_STORED``, no
    compression) sit in the file as a local header followed by the raw
    ``.npy`` payload.  Parsing that payload's header in place yields the
    dtype/shape/order and the absolute byte offset of the data, which is
    everything ``np.memmap`` needs.  The central directory is parsed once
    for all members.  Compressed members, zero-size arrays and exotic
    headers are simply omitted (the caller falls back to a normal read).
    """
    mapped: dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path) as archive, open(path, "rb") as handle:
            for name in names:
                try:
                    info = archive.getinfo(name + ".npy")
                except KeyError:
                    continue
                if info.compress_type != zipfile.ZIP_STORED:
                    continue
                try:
                    member = _mmap_member(handle, path, info)
                except (OSError, ValueError):
                    member = None
                if member is not None:
                    mapped[name] = member
    except (OSError, ValueError, zipfile.BadZipFile):
        return mapped
    return mapped


def _all_member_names(path: Path) -> list[str]:
    """Every array member of an ``.npz`` (zip central directory only)."""
    with zipfile.ZipFile(path) as archive:
        return [
            name[: -len(".npy")]
            for name in archive.namelist()
            if name.endswith(".npy")
        ]


class PlanCache:
    """Process-local registry of read-only plan mappings, keyed by
    (checkpoint path, epoch).

    ``np.memmap(mode="r")`` maps the archive ``MAP_SHARED``/read-only on
    POSIX, so every process that maps the same plan file shares the same
    physical page-cache pages — N shard workers cost ~zero resident bytes
    beyond the first.  What the OS does *not* deduplicate is redundant
    mapping work inside one process: a fleet re-loading a model after
    eviction, or a warm standby pre-opening every plan it might inherit,
    would otherwise re-parse the zip directory and re-map every member.
    This cache hands out the one canonical mapping per plan epoch.

    The *epoch* is the archive's identity fingerprint (inode, size,
    mtime-ns): durable writes replace the file atomically, so a new plan
    version is a new inode and old epochs are dropped eagerly — a cached
    mapping can never alias a superseded plan.  Instances are
    thread-safe; they are per-process by construction (mappings don't
    pickle), each shard worker builds its own.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # {path: (epoch, {member: np.memmap})}  guarded-by: _lock
        self._mapped: dict[str, tuple[tuple, dict[str, np.ndarray]]] = {}
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    @staticmethod
    def epoch(path: str | Path) -> tuple:
        """The archive's current identity fingerprint."""
        stat = os.stat(path)
        return (stat.st_ino, stat.st_size, stat.st_mtime_ns)

    def mappings(self, path: str | Path) -> dict[str, np.ndarray]:
        """The canonical member→mapping dict for the plan's current epoch.

        Maps every mappable member once per (path, epoch); members that
        cannot be mapped (compressed, zero-size, exotic headers) are
        absent and callers fall back to a copying read.  The returned
        dict is shared — treat it as read-only.
        """
        path = Path(path).resolve()
        key = str(path)
        epoch = self.epoch(path)
        with self._lock:
            entry = self._mapped.get(key)
            if entry is not None and entry[0] == epoch:
                self.hits += 1
                return entry[1]
        # Map outside the lock (zip parsing does file I/O); last writer
        # wins on a race, both mappings view identical bytes.
        mapped = _mmap_npz_arrays(path, _all_member_names(path))
        with self._lock:
            entry = self._mapped.get(key)
            if entry is not None and entry[0] == epoch:
                self.hits += 1
                return entry[1]
            self.misses += 1
            self._mapped[key] = (epoch, mapped)
        return mapped

    def warm(self, path: str | Path, prefault: bool = False) -> int:
        """Pre-map a plan (a standby's startup step); returns bytes mapped.

        With ``prefault=True`` every mapped byte is touched once so the
        page-cache is populated *before* the standby is promoted — the
        first request after failover then faults nothing in.
        """
        total = 0
        for member in self.mappings(path).values():
            total += member.nbytes
            if prefault and member.size:
                # Touch every mapped byte once (the copy is transient;
                # the point is the page-cache residency it leaves behind).
                member.tobytes()
        return total

    def drop(self, path: str | Path) -> None:
        """Forget a plan's mappings (the file is being retired)."""
        key = str(Path(path).resolve())
        with self._lock:
            self._mapped.pop(key, None)


def load_plan(
    path: str | Path,
    store: ProvenanceStore,
    features,
    labels: np.ndarray,
    mmap: bool = True,
    cache_sparse_blocks: bool = True,
    plan_cache: PlanCache | None = None,
    kernel_block_size: int | None = None,
) -> ReplayPlan:
    """Reload a compiled plan saved by :func:`save_plan`.

    ``store`` must be the matching provenance store (typically just
    reloaded via :func:`load_store`) and ``features``/``labels`` the
    original training data — the plan validates task, iteration count,
    batch sizes and sample count before accepting them.  With ``mmap=True``
    every array that can be memory-mapped is loaded with ``mmap_mode="r"``
    (read-only, zero-copy); the replay loops never write to plan state, so
    serving works directly off the mapped file.

    If the archive embeds final model weights they are exposed as
    ``plan.final_weights``.

    Members read into memory here are digest-verified eagerly (when the
    archive records checksums); memory-mapped members are verified
    *lazily*, on the plan's first :meth:`~repro.core.replay_plan.\
ReplayPlan.run` — mapping exists precisely to avoid touching the bytes
    up front, so the integrity sweep rides the first replay (which reads
    them all anyway) and raises :class:`CheckpointCorruptionError` before
    any answer derived from rotten bytes escapes.

    Passing a :class:`PlanCache` makes the mapping *shared*: repeated
    loads of the same plan epoch (re-registration after eviction, warm
    standbys, every model a shard worker hosts from one checkpoint tree)
    reuse the one canonical read-only mapping instead of re-parsing the
    archive.
    """
    path = Path(path)
    try:
        arrays, meta, checksums, deferred = _read_plan_arrays(
            path, mmap, plan_cache
        )
    except FileNotFoundError:
        raise
    except _UNREADABLE as exc:
        raise _unreadable(path, exc) from exc
    except KeyError as exc:
        raise CheckpointCorruptionError(
            f"checkpoint archive {path} is missing member {exc}"
        ) from exc
    final_weights = arrays.pop("final_weights", None)
    deferred.pop("final_weights", None)
    if final_weights is not None and checksums is not None:
        # Consumed immediately (weights restore), so verified eagerly
        # even when mapped.
        _verify_digest("final_weights", final_weights, checksums, path)
    plan = ReplayPlan.from_compiled_state(
        store,
        features,
        labels,
        meta,
        arrays,
        cache_sparse_blocks=cache_sparse_blocks,
        kernel_block_size=kernel_block_size,
    )
    plan.final_weights = final_weights
    if deferred and checksums is not None:

        def verify_mapped(
            members=deferred, table=checksums, archive_path=path
        ) -> None:
            for name, value in members.items():
                _verify_digest(name, value, table, archive_path)

        plan.defer_integrity_check(verify_mapped)
    return plan


def _read_plan_arrays(
    path: Path, mmap: bool, plan_cache: PlanCache | None = None
) -> tuple[dict, dict, dict[str, str] | None, dict]:
    """Plan members + meta + digest table + the mapped (lazily verified)
    subset."""
    with np.load(path, allow_pickle=False) as npz:
        checksums = _parse_checksums(npz)
        archive = _VerifyingArchive(npz, checksums, path)
        keys = [str(k) for k in archive["__plan_meta_keys__"]]
        values = [str(v) for v in archive["__plan_meta_values__"]]
        meta = dict(zip(keys, values))
        version = int(meta.get("format", "-1"))
        if version != _PLAN_FORMAT_VERSION:
            raise ValueError(f"unsupported plan format version: {version}")
        names = [n for n in npz.files if not n.startswith("__")]
        if not mmap:
            mapped = {}
        elif plan_cache is not None:
            cached = plan_cache.mappings(path)
            mapped = {name: cached[name] for name in names if name in cached}
        else:
            mapped = _mmap_npz_arrays(path, names)
        arrays = {
            name: mapped[name] if name in mapped else archive[name]
            for name in names
        }
    deferred = {name: mapped[name] for name in mapped}
    return arrays, meta, checksums, deferred
