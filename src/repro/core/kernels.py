"""Iteration-blocked replay kernels: the roofline path for ``m ≫ B``.

The compiled :class:`~repro.core.replay_plan.ReplayPlan` already turned
K concurrent requests into one GEMM per iteration, but the *iteration*
axis still runs in Python: τ dispatches of two skinny products
``P_t (V_tᵀ W)`` whose rank is at most the mini-batch size ``B``.  In the
paper's dominant ``m ≫ B`` regime each product is far below the BLAS
roofline, so the loop is bound by dispatch overhead, not arithmetic.

This module collapses runs of iterations into **block descriptors** at
compile time.  One SGD replay iteration without hits is an affine map

    ``w ← A_t w + c_t``,   ``A_t = α I + σ s_t P_t V_tᵀ``,
    ``c_t = s_t moment_t``

with ``α = 1 − ηλ`` (the shrink factor), ``s_t = scale_num / B_t`` the
default per-iteration scale and ``σ = −1`` for linear regression
(``adjust = moment − G w``), ``+1`` for the logistic tasks
(``adjust = G w + moment``).  A product of ``b`` such maps stays in the
same low-rank-plus-identity family:

    ``A_{t+b-1} ⋯ A_t = α^b I + D Cᵀ``,   rank(D) = Σ_j r_j ≤ b·B,

and the pair ``(D, C)`` plus the accumulated offset ``v`` are built by a
cheap ``O(m R b)`` scan (the recurrences in :func:`_compose`).  Replaying
the block at serve time is then **two GEMMs total** —
``w ← α^b w + D (Cᵀ w) + v`` — instead of ``b`` skinny dispatches: the
same flops, a ``b``-fold reduction in kernel launches and Python
overhead, which is exactly where the per-iteration path leaves the
roofline unused.

Blocks are *rank-grouped*: a run never spans an SVD rank change, a
``freeze_at`` boundary (the PrIU-opt phase-1 replay stops there), or more
than ``block_size`` iterations, and dense-summary / sparse plans stay on
the scalar path (their per-iteration operator is not a cached low-rank
pair).  At run time a block is usable only when *none* of its iterations
has a hit for *any* request in the batch — the moment a deletion set
intersects a block's batches, that span falls back to the sanctioned
per-iteration loops, which handle the per-request corrections.  Fusion
reassociates the floating-point reduction, so blocked answers match the
scalar path at atol ≲1e-12 (property-tested at the 1e-10 contract);
``block_size <= 1`` compiles no descriptors at all and is bit-identical
to the legacy path by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default iterations fused per block.  Amortizes the Python dispatch
#: ~16× while keeping the stacked rank R ≤ 16·B small enough that the
#: two block GEMMs stay cheaper than the τ skinny products they replace.
DEFAULT_BLOCK_SIZE = 16


@dataclass
class BlockDescriptor:
    """One fused run ``[start, stop)`` as ``w ← α w + D (Cᵀ w) + v``.

    The factor pair is held *transposed* — ``left_t = Dᵀ`` and
    ``right_t = Cᵀ``, each ``(R, m)`` and C-contiguous — so the archived
    stacks slice back into per-block **row ranges**, which are contiguous
    zero-copy views with the exact memory layout of an in-process
    compile.  Bitwise answer stability across ``save_plan``/``load_plan``
    depends on that: BLAS reduction order follows operand layout, so the
    reloaded descriptors must not merely hold equal values, they must
    present them with equal strides.
    """

    start: int
    stop: int
    alpha: float  # shrink^(stop-start)
    left_t: np.ndarray  # Dᵀ, (R, m): stacked SVD left factors
    right_t: np.ndarray  # Cᵀ, (R, m): composed coefficient columns
    offset: np.ndarray  # v, (m,): accumulated moment term

    @property
    def n_iterations(self) -> int:
        return self.stop - self.start

    @property
    def rank(self) -> int:
        return int(self.left_t.shape[0])

    def nbytes(self) -> int:
        return int(
            self.left_t.nbytes + self.right_t.nbytes + self.offset.nbytes
        )

    def apply(self, weights: np.ndarray) -> np.ndarray:
        """Advance ``weights`` across the whole block: two GEMMs + axpy."""
        bulk = self.left_t.T @ (self.right_t @ weights)
        if weights.ndim == 1:
            return self.alpha * weights + bulk + self.offset
        return self.alpha * weights + bulk + self.offset[:, None]


def _compose(
    lefts,
    rights,
    moments,
    base_sizes,
    start: int,
    stop: int,
    shrink: float,
    scale_num: float,
    sigma: float,
) -> BlockDescriptor:
    """Fold iterations ``[start, stop)`` into one ``(α, D, C, v)`` tuple.

    Invariant after ``j`` folded iterations: the partial product equals
    ``α^j I + D Cᵀ`` and the partial affine offset is ``v``.  Folding the
    next map ``A = α I + P Ṽᵀ`` (``Ṽ = σ s_t V_t``) extends them as

        ``D ← [D | P]``,  ``C ← [α C | α^j Ṽ + C (Dᵀ Ṽ)]``,
        ``v ← α v + P (Ṽᵀ v) + s_t moment_t``

    — ``O(m R)`` per iteration, paid once at compile time.  A zero batch
    (``s_t = 0``) contributes a pure shrink step: no new columns, the
    existing ones just pick up the extra ``α``.
    """
    n_params = moments.shape[1]
    left = np.empty((n_params, 0))
    right = np.empty((n_params, 0))
    offset = np.zeros(n_params)
    alpha = 1.0
    # reprolint: allow[R006] compile-time composition: this loop runs once
    # per (re)compile to build the descriptor, never on the serve path
    for t in range(start, stop):
        base = int(base_sizes[t])
        scale = scale_num / base if base > 0 else 0.0
        if scale == 0.0:
            offset = shrink * offset
            right = shrink * right
            alpha *= shrink
            continue
        factor_left = np.asarray(lefts[t], dtype=float)
        tilted = (sigma * scale) * np.asarray(rights[t], dtype=float)
        offset = (
            shrink * offset
            + factor_left @ (tilted.T @ offset)
            + scale * np.asarray(moments[t], dtype=float)
        )
        new_cols = alpha * tilted + right @ (left.T @ tilted)
        left = np.hstack((left, factor_left))
        right = np.hstack((shrink * right, new_cols))
        alpha *= shrink
    return BlockDescriptor(
        start=int(start),
        stop=int(stop),
        alpha=float(alpha),
        left_t=np.ascontiguousarray(left.T),
        right_t=np.ascontiguousarray(right.T),
        offset=offset,
    )


class IterationBlocks:
    """The compiled block schedule: descriptors plus their fold config.

    Holds everything needed to (re)compose a descriptor from the plan's
    per-iteration state, so a commit that patches a few summaries can
    rebuild just the dirty blocks (:meth:`rebuild`) instead of regrouping
    the whole schedule.
    """

    def __init__(
        self,
        descriptors: list[BlockDescriptor],
        block_size: int,
        shrink: float,
        scale_num: float,
        sigma: float,
    ) -> None:
        self.descriptors = descriptors
        self.block_size = int(block_size)
        self.shrink = float(shrink)
        self.scale_num = float(scale_num)
        self.sigma = float(sigma)
        self.starts = np.fromiter(
            (d.start for d in descriptors), np.int64, count=len(descriptors)
        )
        self.stops = np.fromiter(
            (d.stop for d in descriptors), np.int64, count=len(descriptors)
        )

    def __len__(self) -> int:
        return len(self.descriptors)

    def fused_iterations(self) -> int:
        """Iterations covered by a descriptor (the fusable share of τ)."""
        return int((self.stops - self.starts).sum())

    def nbytes(self) -> int:
        total = self.starts.nbytes + self.stops.nbytes
        for descriptor in self.descriptors:
            total += descriptor.nbytes()
        return int(total)

    # ---------------------------------------------------------- rebuild
    def dirty_blocks(self, iterations) -> np.ndarray:
        """Descriptor indices whose span intersects ``iterations``."""
        touched = np.asarray(iterations, dtype=np.int64)
        if touched.size == 0 or not self.descriptors:
            return np.empty(0, dtype=np.int64)
        slots = np.searchsorted(self.starts, touched, side="right") - 1
        inside = (slots >= 0) & (touched < self.stops[np.clip(slots, 0, None)])
        return np.unique(slots[inside])

    def rebuild(self, iterations, lefts, rights, moments, base_sizes) -> int:
        """Recompose every block a patched iteration dirtied; keep spans.

        Span boundaries are preserved (only the folded contents change),
        so an incremental refresh followed by :meth:`rebuild` yields the
        same schedule a full recompile of the patched state would.
        Returns how many descriptors were recomposed.
        """
        dirty = self.dirty_blocks(iterations)
        for slot in dirty:
            old = self.descriptors[slot]
            self.descriptors[slot] = _compose(
                lefts,
                rights,
                moments,
                base_sizes,
                old.start,
                old.stop,
                self.shrink,
                self.scale_num,
                self.sigma,
            )
        return int(dirty.size)

    # ------------------------------------------------------ persistence
    def state_arrays(self) -> dict[str, np.ndarray]:
        """Archive members (``kernel_*``) for ``save_plan`` round-trips."""
        n_blocks = len(self.descriptors)
        ranks = np.fromiter(
            (d.rank for d in self.descriptors), np.int64, count=n_blocks
        )
        row_offsets = np.concatenate(([0], np.cumsum(ranks)))
        if n_blocks:
            left = np.vstack([d.left_t for d in self.descriptors])
            right = np.vstack([d.right_t for d in self.descriptors])
            offsets = np.stack([d.offset for d in self.descriptors])
        else:  # pragma: no cover - empty schedules are not persisted
            left = np.empty((0, 0))
            right = np.empty((0, 0))
            offsets = np.empty((0, 0))
        return {
            "kernel_starts": self.starts,
            "kernel_stops": self.stops,
            "kernel_alphas": np.fromiter(
                (d.alpha for d in self.descriptors), float, count=n_blocks
            ),
            "kernel_row_offsets": row_offsets,
            "kernel_left": left,
            "kernel_right": right,
            "kernel_offsets": offsets,
        }

    @classmethod
    def from_state_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        block_size: int,
        shrink: float,
        scale_num: float,
        sigma: float,
    ) -> "IterationBlocks":
        """Rebind descriptors as row-range views into the archived stacks.

        The concatenated factor matrices may be read-only memory maps;
        per-block row slices are contiguous zero-copy views with the
        same strides an in-process compile produces, so replay answers
        are bit-identical before and after the round trip.
        """
        starts = np.asarray(arrays["kernel_starts"], dtype=np.int64)
        stops = np.asarray(arrays["kernel_stops"], dtype=np.int64)
        alphas = np.asarray(arrays["kernel_alphas"], dtype=float)
        row_offsets = np.asarray(
            arrays["kernel_row_offsets"], dtype=np.int64
        )
        left = arrays["kernel_left"]
        right = arrays["kernel_right"]
        offsets = arrays["kernel_offsets"]
        descriptors = [
            BlockDescriptor(
                start=int(starts[i]),
                stop=int(stops[i]),
                alpha=float(alphas[i]),
                left_t=left[row_offsets[i] : row_offsets[i + 1]],
                right_t=right[row_offsets[i] : row_offsets[i + 1]],
                offset=offsets[i],
            )
            for i in range(starts.size)
        ]
        return cls(descriptors, block_size, shrink, scale_num, sigma)


def compile_blocks(
    lefts,
    rights,
    moments,
    base_sizes,
    shrink: float,
    scale_num: float,
    sigma: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
    boundaries=(),
) -> IterationBlocks | None:
    """Group the iteration axis into fused block descriptors.

    Grouping rules (the "rank-grouped" part): a run breaks whenever the
    SVD rank changes between consecutive iterations, at every mandatory
    boundary in ``boundaries`` (the PrIU-opt freeze point ``t_s``, where
    phase-1 replays stop), and after ``block_size`` iterations.  Runs
    shorter than 2 iterations compile **no** descriptor — fusing one
    iteration saves nothing, and it makes ``block_size <= 1`` exactly the
    legacy per-iteration plan (bit-identical, not merely close).

    Returns ``None`` when nothing is fusable.
    """
    tau = int(len(base_sizes))
    block_size = int(block_size)
    if block_size < 2 or tau == 0:
        return None
    cuts = {0, tau}
    for boundary in boundaries:
        boundary = int(boundary)
        if 0 < boundary < tau:
            cuts.add(boundary)
    for t in range(1, tau):
        if rights[t].shape[1] != rights[t - 1].shape[1]:
            cuts.add(t)
    descriptors: list[BlockDescriptor] = []
    edges = sorted(cuts)
    for lo, hi in zip(edges[:-1], edges[1:]):
        for start in range(lo, hi, block_size):
            stop = min(start + block_size, hi)
            if stop - start < 2:
                continue
            descriptors.append(
                _compose(
                    lefts,
                    rights,
                    moments,
                    base_sizes,
                    start,
                    stop,
                    shrink,
                    scale_num,
                    sigma,
                )
            )
    if not descriptors:
        return None
    return IterationBlocks(descriptors, block_size, shrink, scale_num, sigma)


def run_blocked(
    blocks: IterationBlocks | None,
    weights: np.ndarray,
    hits: dict,
    start: int,
    end: int,
    scalar_runner,
) -> tuple[np.ndarray, dict]:
    """Drive a replay over ``[start, end)``: fused blocks + scalar gaps.

    A descriptor is usable only when it lies inside the replay range and
    ``seg_offsets`` shows no (iteration, request) hit segment within its
    span — hit-free iterations apply the *default* scale
    ``scale_num / B_t`` for every request, which is exactly what the
    descriptor folded in.  Everything between usable blocks (hit spans,
    range-clipped partial blocks) goes through ``scalar_runner``, the
    legacy per-iteration loop.  Returns the advanced weights plus a
    ``{"fused_blocks", "fused_iterations", "scalar_iterations"}`` tally
    for the cost model's replay observations.
    """
    stats = {"fused_blocks": 0, "fused_iterations": 0, "scalar_iterations": 0}
    if blocks is None or not blocks.descriptors:
        stats["scalar_iterations"] = max(0, end - start)
        return scalar_runner(weights, hits, start, end), stats
    seg_offsets = hits["seg_offsets"]
    cursor = start
    for descriptor in blocks.descriptors:
        if descriptor.start < cursor or descriptor.stop > end:
            continue
        if seg_offsets[descriptor.stop] != seg_offsets[descriptor.start]:
            continue  # a request hit inside: scalar fallback owns this span
        if descriptor.start > cursor:
            weights = scalar_runner(weights, hits, cursor, descriptor.start)
            stats["scalar_iterations"] += descriptor.start - cursor
        weights = descriptor.apply(weights)
        stats["fused_blocks"] += 1
        stats["fused_iterations"] += descriptor.n_iterations
        cursor = descriptor.stop
    if cursor < end:
        weights = scalar_runner(weights, hits, cursor, end)
        stats["scalar_iterations"] += end - cursor
    return weights, stats
