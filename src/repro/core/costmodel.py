"""Cost-model-driven scheduling: estimate, then admit.

Every scheduling decision in the serving stack used to be a fixed
constant — the coalescing budget, ``plan_refresh_threshold``, the
:class:`~repro.core.maintenance.MaintenancePolicy` limits, eviction
order.  The system *measures* everything (``BENCH_refresh`` ratios,
:class:`~repro.core.maintenance.MaintenanceCost`, per-lane latency), so
this module closes the loop: a cheap upfront estimate routes each
request to the cheapest safe execution strategy, and the estimate is
held accountable by predicted-vs-actual tests and the
``BENCH_costmodel.json`` CI gate.

The estimator is deliberately *free*: a removal set's footprint is read
off the packed occurrence index
(:meth:`~repro.core.provenance_store.PackedOccurrenceIndex.lookup`,
two ``np.searchsorted`` range counts plus a gather) — no replay, no
copy.  From those counts a :class:`CostEstimate` predicts

* **touched iterations** (and the fraction of the schedule they cover),
* **plan-patch bytes** — what an incremental
  :meth:`~repro.core.replay_plan.ReplayPlan.refresh` would rewrite
  (mirrored exactly by :meth:`ReplayPlan.predict_patch_bytes`, so
  predicted-vs-actual comparisons measure the estimate's inputs, not
  drift between two formulas),
* **SVD width growth** — correction columns a commit would append to
  truncated summaries, and
* **refresh-vs-recompile seconds** via a :class:`Calibration` fitted
  from recorded ``BENCH_refresh.json`` runs and refreshed online from
  served-batch timings.

Decision points wired to the model:

* ``commit_mode`` servers pick refresh-vs-recompile from
  :meth:`CostModel.refresh_threshold` (the fraction where the two
  calibrated cost curves cross) instead of the fixed
  ``plan_refresh_threshold``.  Both paths produce identical state, so
  the choice is answer-preserving *by construction* — only cost moves.
* :class:`~repro.serving.policy.AdmissionPolicy` closes a coalescing
  batch early once the remaining budget exceeds the predicted marginal
  batching saving (:meth:`CostModel.should_close`).  Closing early only
  re-partitions batches; committed answers depend on admission order
  alone, so this too never changes an answer.
* :meth:`CostModel.maintenance_policy` derives
  :class:`~repro.core.maintenance.MaintenancePolicy` limits from the
  measured refresh-vs-recompile ratio instead of hand-picked constants.
* :meth:`~repro.serving.fleet.ModelRegistry.retire` makes eviction
  maintenance-aware: a high-debt model is reclaimed and checkpointed
  before it is dropped.

The uncalibrated defaults reproduce the historical constants exactly
(``Calibration().refresh_threshold() == 0.25`` matches the old fixed
``plan_refresh_threshold``; an unknown batch time disables early
closing), so attaching a fresh :class:`CostModel` is behaviourally
inert until data arrives.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .maintenance import MaintenancePolicy
from .provenance_store import normalize_removed_indices

#: Decisions kept in the per-model predicted-vs-actual log (ring buffer;
#: the benchmark drains it into ``BENCH_costmodel.json``).
MAX_DECISIONS = 512


@dataclass(frozen=True)
class CostEstimate:
    """What one removal set is predicted to cost, before any replay.

    ``touched_*`` and ``plan_patch_bytes``/``svd_width_growth`` are
    *structural* predictions read off the packed occurrence index — for
    a consistent store they are exact, and the test harness keeps them
    honest against the executed patch.  ``refresh_seconds`` /
    ``recompile_seconds`` are the *calibrated* (noisy) predictions; the
    ``mode`` is whichever is predicted cheaper, expressed through the
    derived threshold so the commit path's choice matches the estimate.
    """

    n_removed: int
    touched_iterations: int
    touched_fraction: float
    touched_occurrences: int
    plan_patch_bytes: int
    svd_width_growth: int
    refresh_seconds: float
    recompile_seconds: float
    mode: str  # "refresh" | "recompile" | "unsupported"
    threshold: float

    @property
    def refresh_vs_recompile(self) -> float:
        """Predicted refresh/recompile cost ratio (< 1 -> refresh wins)."""
        if self.recompile_seconds <= 0.0:
            return float("inf") if self.refresh_seconds > 0.0 else 0.0
        return self.refresh_seconds / self.recompile_seconds

    def as_dict(self) -> dict:
        """JSON-serializable form (``ServedOutcome.predicted``, benchmarks)."""
        return {
            "n_removed": self.n_removed,
            "touched_iterations": self.touched_iterations,
            "touched_fraction": self.touched_fraction,
            "touched_occurrences": self.touched_occurrences,
            "plan_patch_bytes": self.plan_patch_bytes,
            "svd_width_growth": self.svd_width_growth,
            "refresh_seconds": self.refresh_seconds,
            "recompile_seconds": self.recompile_seconds,
            "refresh_vs_recompile": self.refresh_vs_recompile,
            "mode": self.mode,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class Calibration:
    """The fitted coefficients a :class:`CostModel` predicts with.

    The timing model is deliberately two-parameter: an incremental
    refresh costs ``refresh_seconds_per_fraction * fraction`` (the patch
    work is linear in the touched share of the schedule) and a recompile
    costs a flat ``recompile_seconds`` (it always rebuilds everything).
    Their crossing point is the derived refresh-vs-recompile threshold.

    ``batch_seconds`` is the predicted wall-clock of one dispatched
    batch (the admission layer's early-closing signal); ``0.0`` means
    *unknown* and disables early closing rather than degenerating to
    no coalescing at all.

    The defaults reproduce the pre-cost-model constants: a threshold of
    ``0.25`` (the historical ``plan_refresh_threshold``) and no early
    closing, so an uncalibrated model changes nothing.
    """

    refresh_seconds_per_fraction: float = 1.0
    recompile_seconds: float = 0.25
    batch_seconds: float = 0.0
    #: Measured per-iteration replay cost on the fused (blocked-kernel)
    #: and scalar paths; ``0.0`` means unknown.  Fed by
    #: :meth:`CostModel.observe_replay` and ``BENCH_kernel.json``'s
    #: ``kernel_sweep`` rows; consulted by
    #: :meth:`CostModel.kernel_block_size`.
    fused_iteration_seconds: float = 0.0
    scalar_iteration_seconds: float = 0.0
    source: str = "default"
    n_observations: int = 0

    def __post_init__(self) -> None:
        if self.refresh_seconds_per_fraction <= 0.0:
            raise ValueError("refresh_seconds_per_fraction must be > 0")
        if self.recompile_seconds <= 0.0:
            raise ValueError("recompile_seconds must be > 0")
        if self.batch_seconds < 0.0:
            raise ValueError("batch_seconds must be >= 0")
        if self.fused_iteration_seconds < 0.0:
            raise ValueError("fused_iteration_seconds must be >= 0")
        if self.scalar_iteration_seconds < 0.0:
            raise ValueError("scalar_iteration_seconds must be >= 0")

    def kernel_speedup(self) -> float:
        """Measured scalar/fused per-iteration ratio (0.0 = uncalibrated)."""
        if (
            self.fused_iteration_seconds <= 0.0
            or self.scalar_iteration_seconds <= 0.0
        ):
            return 0.0
        return self.scalar_iteration_seconds / self.fused_iteration_seconds

    def refresh_threshold(self) -> float:
        """The touched-iteration fraction where recompiling starts winning.

        The crossing point of the two calibrated cost curves, clipped to
        ``[0.01, 1.0]`` so a degenerate calibration can neither disable
        refresh entirely nor force it for every-iteration removals.
        """
        crossing = self.recompile_seconds / self.refresh_seconds_per_fraction
        return float(min(1.0, max(0.01, crossing)))

    @classmethod
    def from_bench(cls, source) -> "Calibration":
        """Fit from a recorded ``BENCH_refresh.json`` run (path or dict).

        Each ``commit_costs`` row carries ``plan_sync_seconds``, the
        touched ``fraction_iterations_touched`` and (for refresh rows)
        ``speedup_vs_recompile``; the fit is the median per-fraction
        refresh rate and the median recompile time — robust to the
        warm-up outliers benchmark runs carry.  Rows that cannot inform
        a coefficient are skipped; with no usable rows the defaults are
        kept (and ``n_observations`` says so).

        This can never fail: a missing file, an empty or truncated JSON
        body, or a payload without a usable ``commit_costs`` table all
        fall back to the inert uncalibrated defaults (threshold 0.25, no
        early closing) with a ``source`` label recording why — a fresh
        deployment attaches its cost model *before* its first benchmark
        run exists, and "no calibration yet" must not take serving down.
        """
        label = "dict"
        if isinstance(source, (str, Path)):
            label = str(source)
            try:
                with open(source) as handle:
                    source = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                return cls(source=f"{label} (unreadable: {exc}; defaults)")
        if not isinstance(source, dict):
            return cls(source=f"{label} (not a mapping; defaults)")
        rows = source.get("commit_costs", [])
        if not isinstance(rows, list):
            rows = []
        rows = [row for row in rows if isinstance(row, dict)]
        refresh_rates: list[float] = []
        recompiles: list[float] = []
        for row in rows:
            try:
                seconds = float(row.get("plan_sync_seconds", 0.0))
                fraction = float(row.get("fraction_iterations_touched", 0.0))
                speedup = float(row.get("speedup_vs_recompile", 0.0))
            except (TypeError, ValueError):
                # A partial row (interrupted benchmark write) informs
                # nothing; skip it rather than fail the attach.
                continue
            if seconds <= 0.0:
                continue
            if row.get("mode") == "refresh":
                if fraction > 0.0:
                    refresh_rates.append(seconds / fraction)
                if speedup > 0.0:
                    recompiles.append(seconds * speedup)
            elif row.get("mode") == "recompile":
                recompiles.append(seconds)
        # BENCH_kernel.json payloads (or merged trajectories) additionally
        # carry a ``kernel_sweep`` table with measured per-iteration
        # replay costs for the fused and scalar paths.
        sweep = source.get("kernel_sweep", [])
        if not isinstance(sweep, list):
            sweep = []
        fused_times: list[float] = []
        scalar_times: list[float] = []
        for row in sweep:
            if not isinstance(row, dict):
                continue
            try:
                fused = float(row.get("blocked_seconds_per_iteration", 0.0))
                scalar = float(row.get("scalar_seconds_per_iteration", 0.0))
            except (TypeError, ValueError):
                continue
            if fused > 0.0:
                fused_times.append(fused)
            if scalar > 0.0:
                scalar_times.append(scalar)
        default = cls()
        return cls(
            refresh_seconds_per_fraction=(
                float(np.median(refresh_rates))
                if refresh_rates
                else default.refresh_seconds_per_fraction
            ),
            recompile_seconds=(
                float(np.median(recompiles))
                if recompiles
                else default.recompile_seconds
            ),
            batch_seconds=default.batch_seconds,
            fused_iteration_seconds=(
                float(np.median(fused_times))
                if fused_times
                else default.fused_iteration_seconds
            ),
            scalar_iteration_seconds=(
                float(np.median(scalar_times))
                if scalar_times
                else default.scalar_iteration_seconds
            ),
            source=label,
            n_observations=(
                len(refresh_rates)
                + len(recompiles)
                + len(fused_times)
                + len(scalar_times)
            ),
        )

    def as_dict(self) -> dict:
        return {
            "refresh_seconds_per_fraction": self.refresh_seconds_per_fraction,
            "recompile_seconds": self.recompile_seconds,
            "batch_seconds": self.batch_seconds,
            "fused_iteration_seconds": self.fused_iteration_seconds,
            "scalar_iteration_seconds": self.scalar_iteration_seconds,
            "kernel_speedup": self.kernel_speedup(),
            "refresh_threshold": self.refresh_threshold(),
            "source": self.source,
            "n_observations": self.n_observations,
        }


class CostModel:
    """A calibrated estimator plus its online-refresh and decision log.

    Thread-safe: the serving layer calls :meth:`observe_batch` /
    :meth:`observe_commit` from worker threads while submitters read
    estimates.  Attach one per trainer (``trainer.cost_model``) and/or
    to an :class:`~repro.serving.policy.AdmissionPolicy`
    (``cost_model=``); a model shared across both sees commit *and*
    batch timings and calibrates faster.
    """

    def __init__(
        self, calibration: Calibration | None = None, ewma: float = 0.3
    ) -> None:
        if not 0.0 < ewma <= 1.0:
            raise ValueError("ewma must be in (0, 1]")
        self._calibration = (  # guarded-by: _lock
            calibration if calibration is not None else Calibration()
        )
        self._ewma = float(ewma)
        self._lock = threading.Lock()
        self._decisions: list[dict] = []  # guarded-by: _lock

    # ------------------------------------------------------------- reading
    @property
    def calibration(self) -> Calibration:
        with self._lock:
            return self._calibration

    def refresh_threshold(self) -> float:
        """Current refresh-vs-recompile crossing fraction (commit path)."""
        return self.calibration.refresh_threshold()

    def decisions(self) -> list[dict]:
        """The predicted-vs-actual log, oldest first (bounded ring)."""
        with self._lock:
            return list(self._decisions)

    # ---------------------------------------------------------- estimating
    def estimate(self, trainer, removed) -> CostEstimate:
        """Predict one removal set's cost from the packed occurrence index.

        ``trainer`` is a fitted
        :class:`~repro.core.api.IncrementalTrainer`; ``removed`` ids are
        in its *current* (post-commit) id space.  No replay runs: the
        footprint is two searchsorted range counts and a gather.
        """
        store = trainer.store
        plan = trainer._plan
        removed = normalize_removed_indices(removed)
        index = store.packed_index()
        _, iterations, _ = index.lookup(removed)
        occurrences = int(iterations.size)
        touched = int(np.unique(iterations).size) if occurrences else 0
        n_iterations = len(store.records)
        fraction = touched / n_iterations if n_iterations else 0.0
        calibration = self.calibration
        threshold = calibration.refresh_threshold()
        supported = bool(getattr(plan, "supported", False))
        if not supported:
            mode = "unsupported"
            patch_bytes = 0
        elif fraction > threshold:
            # A recompile rebuilds every compiled array.
            mode = "recompile"
            patch_bytes = plan.nbytes()
        else:
            mode = "refresh"
            patch_bytes = plan.predict_patch_bytes(occurrences, touched)
        return CostEstimate(
            n_removed=int(removed.size),
            touched_iterations=touched,
            touched_fraction=float(fraction),
            touched_occurrences=occurrences,
            plan_patch_bytes=int(patch_bytes),
            svd_width_growth=(
                occurrences if store.compression == "svd" else 0
            ),
            refresh_seconds=(
                calibration.refresh_seconds_per_fraction * fraction
            ),
            recompile_seconds=calibration.recompile_seconds,
            mode=mode,
            threshold=threshold,
        )

    # ---------------------------------------------------------- admission
    def predicted_batch_saving(self, n_collected: int) -> float:
        """Seconds one more straggler could save by riding this batch.

        The most a request saves by coalescing is one batch's predicted
        service time (the cost of the batch it would otherwise form),
        amortized over the members already waiting for it — so the
        marginal value of waiting shrinks as the batch grows.  ``0.0``
        while the batch time is uncalibrated.
        """
        batch_seconds = self.calibration.batch_seconds
        if batch_seconds <= 0.0 or n_collected < 1:
            return 0.0
        return batch_seconds / n_collected

    def should_close(self, n_collected: int, remaining_budget: float) -> bool:
        """True when waiting out the budget costs more than batching saves.

        The admission layer's early-closing rule: once the remaining
        coalescing budget exceeds the predicted marginal saving of one
        more arrival, every queued member pays more latency than a
        straggler could recoup — dispatch now.  Strictly one-directional
        (it can only close a batch *earlier* than the lane budget
        would), so SLA lane semantics are untouched and the decision is
        answer-preserving.  Always False while uncalibrated.
        """
        saving = self.predicted_batch_saving(n_collected)
        if saving <= 0.0:
            return False
        return remaining_budget > saving

    # ------------------------------------------------------------- kernel
    def kernel_block_size(self, requested: int | None = None) -> int | None:
        """Resolve the replay-kernel block size through the calibration.

        ``requested`` is the caller's configured size (``None`` = the
        module default).  The model only ever *vetoes* fusion: when both
        per-iteration timings have been measured
        (:meth:`observe_replay` / ``kernel_sweep`` rows) and the fused
        path is not actually faster, it returns 0 (scalar engine);
        otherwise the request passes through untouched.  Uncalibrated
        models therefore change nothing — the same inertness contract as
        every other decision point here.
        """
        calibration = self.calibration
        speedup = calibration.kernel_speedup()
        if speedup > 0.0 and speedup <= 1.0:
            return 0
        return requested

    def observe_replay(
        self, fused_iterations: int, scalar_iterations: int, seconds: float
    ) -> None:
        """Online-refresh the per-iteration replay costs from one dispatch.

        Only *pure* runs teach a coefficient (all iterations fused, or
        all scalar) — a mixed run cannot attribute its wall clock to
        either path.  Every observation lands in the decision ring
        (``kind: "replay"``) so ``BENCH_costmodel`` inspects the fused
        share actually served.
        """
        fused = int(fused_iterations)
        scalar = int(scalar_iterations)
        total = fused + scalar
        if total <= 0 or seconds < 0.0:
            return
        with self._lock:
            calibration = self._calibration
            updates: dict = {}
            if seconds > 0.0 and scalar == 0:
                previous = calibration.fused_iteration_seconds
                observed = seconds / fused
                updates["fused_iteration_seconds"] = (
                    observed if previous <= 0.0
                    else self._blend(previous, observed)
                )
            elif seconds > 0.0 and fused == 0:
                previous = calibration.scalar_iteration_seconds
                observed = seconds / scalar
                updates["scalar_iteration_seconds"] = (
                    observed if previous <= 0.0
                    else self._blend(previous, observed)
                )
            if updates:
                updates["source"] = "online"
                updates["n_observations"] = calibration.n_observations + 1
                self._calibration = dataclasses.replace(
                    calibration, **updates
                )
            self._decisions.append({
                "kind": "replay",
                "actual_mode": "replay",
                "fused_iterations": fused,
                "scalar_iterations": scalar,
                "actual_seconds": float(seconds),
                "predicted": None,
            })
            if len(self._decisions) > MAX_DECISIONS:
                del self._decisions[: -MAX_DECISIONS]

    # ------------------------------------------------------------ learning
    def observe_commit(self, estimate: CostEstimate | None, receipt: dict) -> None:
        """Online-refresh the commit-path coefficients from one receipt.

        ``receipt`` is the dict :meth:`IncrementalTrainer.commit`
        returns (``mode``/``fraction`` plus the timed
        ``plan_sync_seconds`` and the executed ``patched_bytes``).  The
        matching pre-commit ``estimate`` (may be None for untracked
        commits) is logged against it in the decision ring.
        """
        seconds = float(receipt.get("plan_sync_seconds", 0.0))
        mode = receipt.get("mode")
        fraction = float(receipt.get("fraction", 0.0))
        with self._lock:
            calibration = self._calibration
            updates: dict = {}
            if seconds > 0.0:
                if mode == "refresh" and fraction > 0.0:
                    updates["refresh_seconds_per_fraction"] = self._blend(
                        calibration.refresh_seconds_per_fraction,
                        seconds / fraction,
                    )
                elif mode == "recompile":
                    updates["recompile_seconds"] = self._blend(
                        calibration.recompile_seconds, seconds
                    )
            if updates:
                updates["source"] = "online"
                updates["n_observations"] = calibration.n_observations + 1
                self._calibration = dataclasses.replace(
                    calibration, **updates
                )
            decision = {
                "actual_mode": mode,
                "actual_fraction": fraction,
                "actual_seconds": seconds,
                "actual_patched_bytes": receipt.get("patched_bytes"),
                "predicted": None if estimate is None else estimate.as_dict(),
            }
            self._decisions.append(decision)
            if len(self._decisions) > MAX_DECISIONS:
                del self._decisions[: -MAX_DECISIONS]

    def observe_batch(self, batch_size: int, seconds: float) -> None:
        """Online-refresh the batch-time coefficient from one dispatch."""
        if batch_size < 1 or seconds < 0.0:
            return
        with self._lock:
            calibration = self._calibration
            previous = calibration.batch_seconds
            blended = (
                seconds if previous <= 0.0 else self._blend(previous, seconds)
            )
            self._calibration = dataclasses.replace(
                calibration,
                batch_seconds=blended,
                source="online",
                n_observations=calibration.n_observations + 1,
            )

    def _blend(self, previous: float, observed: float) -> float:
        return (1.0 - self._ewma) * previous + self._ewma * observed

    # -------------------------------------------------------- maintenance
    def maintenance_policy(
        self, base: MaintenancePolicy | None = None
    ) -> MaintenancePolicy:
        """Auto-tune maintenance limits from the measured cost ratios.

        The limits track the refresh-vs-recompile crossing.  A *high*
        threshold means refresh is cheap relative to recompile, so
        commits take the incremental path almost always — and every
        refresh leaves slot garbage and SVD correction columns behind,
        so reclamation must trigger sooner (tighter limits).  A *low*
        threshold means commits recompile often, and a recompile rebuilds
        the plan garbage-free as a side effect — maintenance can tolerate
        a larger dead fraction between runs.  Both limits are clipped to
        operational bands so a wild calibration can neither disable
        maintenance nor make it chase every commit.  ``base`` contributes
        the knobs the model has no data for (ε mode, eigen correction
        limit) — the manual overrides the architecture doc lists.
        """
        threshold = self.refresh_threshold()
        fraction_limit = float(min(0.5, max(0.05, 1.0 - threshold)))
        column_limit = int(round(min(128, max(4, 64 * (1.0 - threshold)))))
        if base is None:
            base = MaintenancePolicy()
        return dataclasses.replace(
            base,
            max_slot_garbage_fraction=fraction_limit,
            max_svd_correction_columns=column_limit,
        )

    # ----------------------------------------------------------- reporting
    def report(self) -> dict:
        """Calibration + decision log, JSON-ready (``BENCH_costmodel``)."""
        with self._lock:
            return {
                "calibration": self._calibration.as_dict(),
                "decisions": list(self._decisions),
            }
