"""PrIU: the provenance-based incremental update (Sec. 5.1 and 5.3).

Given the provenance store captured during the original training run, an
update for removal set ``R`` replays the iteration space with

    linear (Eq. 13/14):
        ``w ← [(1-ηλ)I - (2η/B_U)(G^(t) - ΔG^(t))] w + (2η/B_U)(d^(t) - Δd^(t))``
    logistic (Eq. 19/20):
        ``w ← [(1-ηλ)I + (η/B_U)(C^(t) - ΔC^(t))] w + (η/B_U)(D^(t) - ΔD^(t))``

where the bulk terms come from the cache (applied through SVD factors in
``O(rm)``) and only the *removed* samples' contributions ``ΔG/ΔC/Δd/ΔD`` are
recomputed, in ``O(ΔB·m)``.  Associativity is exploited throughout: the
update never forms an ``m × m`` product, only matrix–vector ones.

Sparse datasets use the linearized rule (Eq. 11) directly on the sparse
rows — the cached interpolation coefficients eliminate the non-linearity but
no SVD compression is attempted (Sec. 5.3 Discussion).
"""

from __future__ import annotations

import numpy as np

from ..linalg.matrix_utils import is_sparse
from .provenance_store import (
    LinearRecord,
    LogisticRecord,
    MultinomialRecord,
    ProvenanceStore,
    apply_summary,
    normalize_removed_indices,
)


class PrIUUpdater:
    """Replays cached provenance to produce the post-deletion model."""

    def __init__(
        self,
        store: ProvenanceStore,
        features,
        labels: np.ndarray,
        w0: np.ndarray | None = None,
    ) -> None:
        self.store = store
        self.features = features
        self.labels = np.asarray(labels)
        self.sparse = is_sparse(features)
        if not self.sparse:
            self.features = np.asarray(features, dtype=float)
        if store.task == "multinomial_logistic":
            n_params = store.n_classes * store.n_features
        else:
            n_params = store.n_features
        self._w0 = np.zeros(n_params) if w0 is None else np.asarray(w0, float)
        # The occurrence index is built lazily by the store (and shared with
        # any compiled ReplayPlan), so constructing several updaters over the
        # same store never builds it twice.

    # ----------------------------------------------------------------- API
    def update(
        self,
        removed_indices,
        stop_at: int | None = None,
        start_weights: np.ndarray | None = None,
        start_iteration: int = 0,
        assume_unique: bool = False,
    ) -> np.ndarray:
        """Model parameters after deleting ``removed_indices``.

        ``stop_at``/``start_*`` support the PrIU-opt two-phase replay.
        ``assume_unique`` skips re-deduplication when the caller (e.g. the
        facade) already normalized the removal set.
        """
        removed = normalize_removed_indices(
            removed_indices, assume_unique=assume_unique
        )
        if removed.size >= self.store.n_samples:
            raise ValueError("cannot delete every training sample")
        removed_map = self.store.removed_positions(removed)
        w = (self._w0 if start_weights is None else np.asarray(start_weights)).copy()
        end = len(self.store.records) if stop_at is None else stop_at
        step = self._dispatch()
        eta = self.store.learning_rate
        lam = self.store.regularization
        shrink = 1.0 - eta * lam
        for t in range(start_iteration, end):
            record = self.store.records[t]
            hit = removed_map.get(t)
            batch_size = len(record.batch)
            if hit is not None:
                batch_size -= len(hit[0])
            if batch_size <= 0:
                w = shrink * w
                continue
            w = step(record, hit, batch_size, w, eta, shrink)
        return w

    def _dispatch(self):
        if self.store.task == "linear":
            return self._sparse_linear_step if self.sparse else self._linear_step
        if self.store.task == "binary_logistic":
            return self._sparse_binary_step if self.sparse else self._binary_step
        if self.store.task == "multinomial_logistic":
            if self.sparse:
                raise NotImplementedError(
                    "sparse multinomial updates are not supported; "
                    "densify or use the binary task"
                )
            return self._multinomial_step
        raise ValueError(f"unknown task: {self.store.task}")

    # -------------------------------------------------------------- linear
    def _linear_step(
        self, record: LinearRecord, hit, batch_size, w, eta, shrink
    ) -> np.ndarray:
        gw = apply_summary(record.summary, w)
        d = record.moment
        if hit is not None:
            ids, _ = hit
            rows = self.features[ids]
            gw = gw - rows.T @ (rows @ w)
            d = d - rows.T @ self.labels[ids].astype(float)
        scale = 2.0 * eta / batch_size
        return shrink * w - scale * gw + scale * d

    def _sparse_linear_step(
        self, record: LinearRecord, hit, batch_size, w, eta, shrink
    ) -> np.ndarray:
        surviving = self._surviving(record.batch, hit)
        block = self.features[surviving]
        gw = np.asarray(block.T @ (block @ w)).ravel()
        d = np.asarray(block.T @ self.labels[surviving].astype(float)).ravel()
        scale = 2.0 * eta / batch_size
        return shrink * w - scale * gw + scale * d

    # ------------------------------------------------------------ logistic
    def _binary_step(
        self, record: LogisticRecord, hit, batch_size, w, eta, shrink
    ) -> np.ndarray:
        cw = apply_summary(record.summary, w)
        d = record.moment
        if hit is not None:
            ids, positions = hit
            rows = self.features[ids]
            slopes = record.slopes[positions]
            intercepts = record.intercepts[positions]
            y = self.labels[ids].astype(float)
            cw = cw - rows.T @ (slopes * (rows @ w))
            d = d - rows.T @ (intercepts * y)
        scale = eta / batch_size
        return shrink * w + scale * cw + scale * d

    def _sparse_binary_step(
        self, record: LogisticRecord, hit, batch_size, w, eta, shrink
    ) -> np.ndarray:
        # Equation 11 verbatim on sparse rows: the cached (a, b) coefficients
        # replace the exp() but the batch itself is re-touched.
        if hit is not None:
            _, positions = hit
            mask = np.ones(len(record.batch), dtype=bool)
            mask[positions] = False
            surviving = record.batch[mask]
            slopes = record.slopes[mask]
            intercepts = record.intercepts[mask]
        else:
            surviving = record.batch
            slopes = record.slopes
            intercepts = record.intercepts
        block = self.features[surviving]
        y = self.labels[surviving].astype(float)
        z = np.asarray(block @ w).ravel()
        cw = np.asarray(block.T @ (slopes * z)).ravel()
        d = np.asarray(block.T @ (intercepts * y)).ravel()
        scale = eta / batch_size
        return shrink * w + scale * cw + scale * d

    # --------------------------------------------------------- multinomial
    def _multinomial_step(
        self, record: MultinomialRecord, hit, batch_size, w, eta, shrink
    ) -> np.ndarray:
        q = self.store.n_classes
        m = self.store.n_features
        cw = apply_summary(record.summary, w)
        d = record.moment  # q × m
        if hit is not None:
            ids, positions = hit
            rows = self.features[ids]
            probs = record.probabilities[positions]
            wx_train = record.wx[positions]
            y = self.labels[ids].astype(int)
            # ΔC^(t) applied to the *current* w: -Σ Λ_i (W x_i) x_iᵀ.
            current = rows @ w.reshape(q, m).T  # ΔB × q
            pu = np.einsum("ik,ik->i", probs, current)
            lam_s = probs * current - probs * pu[:, None]
            delta_cw = -(lam_s.T @ rows)  # q × m
            # ΔD^(t) from the cached training-time state.
            pu2 = np.einsum("ik,ik->i", probs, wx_train)
            lam_u = probs * wx_train - probs * pu2[:, None]
            coeff = lam_u - probs
            coeff[np.arange(len(ids)), y] += 1.0
            delta_d = coeff.T @ rows  # q × m
            cw = cw - delta_cw.ravel()
            d = d - delta_d
        scale = eta / batch_size
        return shrink * w + scale * cw + scale * d.ravel()

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _surviving(batch: np.ndarray, hit) -> np.ndarray:
        if hit is None:
            return batch
        _, positions = hit
        mask = np.ones(len(batch), dtype=bool)
        mask[positions] = False
        return batch[mask]
