"""The provenance store: PrIU's cached per-iteration summaries (Sec. 5).

During the original training run PrIU caches, for every iteration ``t``, the
numeric image of the provenance-annotated intermediates of Equations 8/10:

* linear regression — ``G^(t) = Σ_{i∈B(t)} x_i x_iᵀ`` and
  ``d^(t) = Σ_{i∈B(t)} x_i y_i``;
* binary logistic — ``C^(t) = Σ a_{i,(t)} x_i x_iᵀ`` and
  ``D^(t) = Σ b_{i,(t)} y_i x_i`` plus the per-sample interpolation
  coefficients themselves (needed to form ``ΔC^(t)``/``ΔD^(t)`` for an
  arbitrary removal set later);
* multinomial logistic — the frozen per-sample softmax state
  (probabilities ``p_i`` and logits-times-weights ``u_i = W^(t) x_i``)
  from which the removed samples' block contributions are reconstructed,
  plus the aggregated ``C^(t)``/``D^(t)``.

``m × m`` (or ``mq × mq``) summaries are optionally stored as truncated-SVD
factor pairs (:class:`~repro.linalg.svd.TruncatedSummary`) per Theorems 6/8.

The store also keeps an inverted *occurrence index* ``sample id → iterations
containing it`` so an update touching ``Δn`` samples enumerates only the
``O(Δn · τB/n)`` affected (iteration, sample) pairs instead of scanning every
batch.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..linalg.svd import TruncatedSummary
from ..models.batching import BatchSchedule

Summary = Union[TruncatedSummary, np.ndarray, None]


def _summary_nbytes(summary: Summary) -> int:
    if summary is None:
        return 0
    if isinstance(summary, TruncatedSummary):
        return summary.nbytes()
    return int(summary.nbytes)


def apply_summary(summary: Summary, vector: np.ndarray) -> np.ndarray:
    """``G w`` through whichever representation the summary uses."""
    if summary is None:
        raise ValueError("iteration has no cached summary to apply")
    if isinstance(summary, TruncatedSummary):
        return summary.apply(vector)
    return summary @ vector


@dataclass
class LinearRecord:
    """Per-iteration cache for linear regression (Eq. 13/14)."""

    batch: np.ndarray
    summary: Summary  # G^(t) or its SVD factors
    moment: np.ndarray  # d^(t)

    def nbytes(self) -> int:
        return int(
            self.batch.nbytes + _summary_nbytes(self.summary) + self.moment.nbytes
        )


@dataclass
class LogisticRecord:
    """Per-iteration cache for binary logistic regression (Eq. 19/20)."""

    batch: np.ndarray
    slopes: np.ndarray  # a_{i,(t)}, aligned with batch
    intercepts: np.ndarray  # b_{i,(t)}
    summary: Summary  # C^(t) or its SVD factors
    moment: np.ndarray  # D^(t)

    def nbytes(self) -> int:
        return int(
            self.batch.nbytes
            + self.slopes.nbytes
            + self.intercepts.nbytes
            + _summary_nbytes(self.summary)
            + self.moment.nbytes
        )


@dataclass
class MultinomialRecord:
    """Per-iteration cache for multinomial logistic regression.

    ``probabilities`` and ``wx`` (``u_i = W^(t) x_i``) are enough to rebuild
    any removed sample's contribution to ``C^(t)`` and ``D^(t)``:
    with ``Λ_i = diag(p_i) - p_i p_iᵀ``,

        ``ΔC^(t)(W) = Σ_{i∈R} Λ_i (W x_i) x_iᵀ``
        ``ΔD^(t)   = Σ_{i∈R} (Λ_i u_i - p_i + e_{y_i}) x_iᵀ``.
    """

    batch: np.ndarray
    probabilities: np.ndarray  # B × q
    wx: np.ndarray  # B × q : W^(t) x_i per batch sample
    summary: Summary  # C^(t) on the vec'd parameter space, or factors
    moment: np.ndarray  # D^(t) (q × m)

    def nbytes(self) -> int:
        return int(
            self.batch.nbytes
            + self.probabilities.nbytes
            + self.wx.nbytes
            + _summary_nbytes(self.summary)
            + self.moment.nbytes
        )


@dataclass
class FrozenProvenance:
    """PrIU-opt logistic: full-dataset frozen coefficients at ``t_s`` (Sec 5.4).

    For binary logistic: ``slopes``/``intercepts`` are the frozen
    ``a_{i,*}, b_{i,*}`` for *all* ``n`` samples, ``gram``/``moment`` the
    frozen ``C*``/``D*`` over the full dataset, and ``eigen`` the offline
    eigendecomposition of ``C*``.  For multinomial the per-sample state is
    ``probabilities``/``wx`` instead.
    """

    t_s: int
    weights_at_ts_available: bool
    slopes: np.ndarray | None = None
    intercepts: np.ndarray | None = None
    probabilities: np.ndarray | None = None
    wx: np.ndarray | None = None
    gram: np.ndarray | None = None
    moment: np.ndarray | None = None
    eigenvectors: np.ndarray | None = None
    eigenvalues: np.ndarray | None = None

    def nbytes(self) -> int:
        total = 0
        for arr in (
            self.slopes,
            self.intercepts,
            self.probabilities,
            self.wx,
            self.gram,
            self.moment,
            self.eigenvectors,
            self.eigenvalues,
        ):
            if arr is not None:
                total += int(arr.nbytes)
        return total


@dataclass
class ProvenanceStore:
    """Everything PrIU needs to replay an update without the nonlinearity."""

    task: str  # "linear" | "binary_logistic" | "multinomial_logistic"
    schedule: BatchSchedule
    learning_rate: float
    regularization: float
    n_samples: int
    n_features: int
    n_classes: int = 1
    records: list = field(default_factory=list)
    frozen: FrozenProvenance | None = None
    compression: str = "none"  # "none" | "svd"
    epsilon: float = 0.01
    sparse_mode: bool = False

    _occurrences: dict[int, list[tuple[int, int]]] | None = None

    def add(self, record) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------ occurrence index
    def occurrences(self) -> dict[int, list[tuple[int, int]]]:
        """Inverted index: sample id -> [(iteration, position in batch)]."""
        if self._occurrences is None:
            index: dict[int, list[tuple[int, int]]] = defaultdict(list)
            for t, record in enumerate(self.records):
                for pos, sample in enumerate(record.batch):
                    index[int(sample)].append((t, pos))
            self._occurrences = dict(index)
        return self._occurrences

    def removed_positions(
        self, removed: np.ndarray
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Per-iteration (sample ids, batch positions) of removed samples.

        Costs ``O(Δn · τB/n)`` via the occurrence index — the complexity term
        the paper's ``O(ΔB m)`` per-iteration bound presumes.
        """
        per_iteration: dict[int, tuple[list[int], list[int]]] = defaultdict(
            lambda: ([], [])
        )
        occurrences = self.occurrences()
        for sample in np.asarray(removed, dtype=int):
            for t, pos in occurrences.get(int(sample), ()):
                ids, positions = per_iteration[t]
                ids.append(int(sample))
                positions.append(pos)
        return {
            t: (np.asarray(ids, dtype=int), np.asarray(positions, dtype=int))
            for t, (ids, positions) in per_iteration.items()
        }

    # -------------------------------------------------------------- memory
    def nbytes(self) -> int:
        """Provenance memory footprint (Table 3's PrIU/PrIU-opt columns)."""
        total = sum(record.nbytes() for record in self.records)
        if self.frozen is not None:
            total += self.frozen.nbytes()
        return int(total)

    def gigabytes(self) -> float:
        return self.nbytes() / 1e9
