"""The provenance store: PrIU's cached per-iteration summaries (Sec. 5).

During the original training run PrIU caches, for every iteration ``t``, the
numeric image of the provenance-annotated intermediates of Equations 8/10:

* linear regression — ``G^(t) = Σ_{i∈B(t)} x_i x_iᵀ`` and
  ``d^(t) = Σ_{i∈B(t)} x_i y_i``;
* binary logistic — ``C^(t) = Σ a_{i,(t)} x_i x_iᵀ`` and
  ``D^(t) = Σ b_{i,(t)} y_i x_i`` plus the per-sample interpolation
  coefficients themselves (needed to form ``ΔC^(t)``/``ΔD^(t)`` for an
  arbitrary removal set later);
* multinomial logistic — the frozen per-sample softmax state
  (probabilities ``p_i`` and logits-times-weights ``u_i = W^(t) x_i``)
  from which the removed samples' block contributions are reconstructed,
  plus the aggregated ``C^(t)``/``D^(t)``.

``m × m`` (or ``mq × mq``) summaries are optionally stored as truncated-SVD
factor pairs (:class:`~repro.linalg.svd.TruncatedSummary`) per Theorems 6/8.

The store also keeps an inverted *occurrence index* ``sample id → iterations
containing it`` so an update touching ``Δn`` samples enumerates only the
``O(Δn · τB/n)`` affected (iteration, sample) pairs instead of scanning every
batch.  The index is materialized as a :class:`PackedOccurrenceIndex` —
three flat, contiguous arrays sorted by sample id — so lookups are
``np.searchsorted`` range scans rather than Python dict walks; the legacy
dict APIs (:meth:`ProvenanceStore.occurrences` /
:meth:`ProvenanceStore.removed_positions`) are thin views over it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..linalg.svd import TruncatedSummary, retruncate_summary
from ..models.batching import BatchSchedule

Summary = Union[TruncatedSummary, np.ndarray, None]


def normalize_removed_indices(indices, assume_unique: bool = False) -> np.ndarray:
    """Canonicalize a removal set to a sorted, unique int64 array.

    Accepts ndarrays, sets, lists, tuples, ranges and generators without
    round-tripping arrays through Python lists.  ``assume_unique`` skips the
    dedup (the caller already ran it — e.g. the facade dedupes once before
    timing starts) but still guarantees the sorted contract.

    Non-integer dtypes are rejected (``astype(int64)`` would silently
    truncate 3.7 → 3), and the result never aliases caller-owned memory —
    the returned array is safe to keep (outcome records, deletion logs)
    and to read after the caller mutates their own copy.
    """
    if isinstance(indices, np.ndarray):
        if indices.size and indices.dtype.kind not in "iu":
            raise TypeError(
                "removal indices must have an integer dtype, got "
                f"{indices.dtype} (casting would silently truncate)"
            )
        arr = indices.ravel().astype(np.int64, copy=False)
        caller_owned = np.shares_memory(arr, indices)
    elif isinstance(indices, (set, frozenset)):
        arr = np.asarray(tuple(indices))
        if arr.size and arr.dtype.kind not in "iu":
            raise TypeError(
                "removal indices must be integers, got dtype "
                f"{arr.dtype} (casting would silently truncate)"
            )
        arr = arr.astype(np.int64, copy=False)
        arr.sort()  # set elements are already unique; sorting suffices
        return arr
    else:
        arr = np.asarray(tuple(indices))
        if arr.size and arr.dtype.kind not in "iu":
            raise TypeError(
                "removal indices must be integers, got dtype "
                f"{arr.dtype} (casting would silently truncate)"
            )
        arr = arr.astype(np.int64, copy=False)
        caller_owned = False
    if assume_unique:
        if arr.size > 1 and np.any(arr[1:] < arr[:-1]):
            return np.sort(arr)  # np.sort copies: never aliases the input
        return arr.copy() if caller_owned else arr
    return np.unique(arr)


def remap_surviving_ids(ids: np.ndarray, removed: np.ndarray) -> np.ndarray:
    """Map pre-compaction sample ids onto the packed post-compaction space.

    ``removed`` must be sorted-unique and disjoint from ``ids``; each
    surviving id simply shifts down by the number of removed ids below it.
    """
    ids = np.asarray(ids, dtype=np.int64)
    if removed.size == 0:
        return ids.copy()
    return ids - np.searchsorted(removed, ids, side="left")


@dataclass
class PackedOccurrenceIndex:
    """Flat structure-of-arrays occurrence table, sorted by sample id.

    Row ``j`` says: ``samples[j]`` sits at ``positions[j]`` inside the batch
    of iteration ``iterations[j]``.  Because ``samples`` is sorted (stably,
    so per-sample runs stay in iteration order), the occurrences of any
    sample are one ``np.searchsorted`` range — the whole lookup for a
    removal set is a handful of vectorized gathers instead of an
    ``O(Δn · τB/n)`` Python loop.
    """

    samples: np.ndarray  # (H,) sorted sample ids
    iterations: np.ndarray  # (H,) iteration of each occurrence
    positions: np.ndarray  # (H,) position inside that iteration's batch

    def __len__(self) -> int:
        return int(self.samples.size)

    def lookup(
        self, removed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All occurrences of ``removed``: ``(sample ids, iterations, positions)``.

        ``removed`` must be sorted-unique (see
        :func:`normalize_removed_indices`); ids never seen in any batch are
        silently skipped, matching the old dict ``get(..., ())`` behavior.
        """
        removed = np.asarray(removed, dtype=np.int64)
        lo = np.searchsorted(self.samples, removed, side="left")
        hi = np.searchsorted(self.samples, removed, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        # Expand each [lo, hi) run into explicit row numbers.
        run_starts = np.repeat(lo, counts)
        within = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        sel = run_starts + within
        return self.samples[sel], self.iterations[sel], self.positions[sel]

    def nbytes(self) -> int:
        return int(
            self.samples.nbytes + self.iterations.nbytes + self.positions.nbytes
        )


def _summary_nbytes(summary: Summary) -> int:
    if summary is None:
        return 0
    if isinstance(summary, TruncatedSummary):
        return summary.nbytes()
    return int(summary.nbytes)


def apply_summary(summary: Summary, vector: np.ndarray) -> np.ndarray:
    """``G w`` through whichever representation the summary uses."""
    if summary is None:
        raise ValueError("iteration has no cached summary to apply")
    if isinstance(summary, TruncatedSummary):
        return summary.apply(vector)
    return summary @ vector


@dataclass
class LinearRecord:
    """Per-iteration cache for linear regression (Eq. 13/14)."""

    batch: np.ndarray
    summary: Summary  # G^(t) or its SVD factors
    moment: np.ndarray  # d^(t)

    def nbytes(self) -> int:
        return int(
            self.batch.nbytes + _summary_nbytes(self.summary) + self.moment.nbytes
        )


@dataclass
class LogisticRecord:
    """Per-iteration cache for binary logistic regression (Eq. 19/20)."""

    batch: np.ndarray
    slopes: np.ndarray  # a_{i,(t)}, aligned with batch
    intercepts: np.ndarray  # b_{i,(t)}
    summary: Summary  # C^(t) or its SVD factors
    moment: np.ndarray  # D^(t)

    def nbytes(self) -> int:
        return int(
            self.batch.nbytes
            + self.slopes.nbytes
            + self.intercepts.nbytes
            + _summary_nbytes(self.summary)
            + self.moment.nbytes
        )


@dataclass
class MultinomialRecord:
    """Per-iteration cache for multinomial logistic regression.

    ``probabilities`` and ``wx`` (``u_i = W^(t) x_i``) are enough to rebuild
    any removed sample's contribution to ``C^(t)`` and ``D^(t)``:
    with ``Λ_i = diag(p_i) - p_i p_iᵀ``,

        ``ΔC^(t)(W) = Σ_{i∈R} Λ_i (W x_i) x_iᵀ``
        ``ΔD^(t)   = Σ_{i∈R} (Λ_i u_i - p_i + e_{y_i}) x_iᵀ``.
    """

    batch: np.ndarray
    probabilities: np.ndarray  # B × q
    wx: np.ndarray  # B × q : W^(t) x_i per batch sample
    summary: Summary  # C^(t) on the vec'd parameter space, or factors
    moment: np.ndarray  # D^(t) (q × m)

    def nbytes(self) -> int:
        return int(
            self.batch.nbytes
            + self.probabilities.nbytes
            + self.wx.nbytes
            + _summary_nbytes(self.summary)
            + self.moment.nbytes
        )


@dataclass
class FrozenProvenance:
    """PrIU-opt logistic: full-dataset frozen coefficients at ``t_s`` (Sec 5.4).

    For binary logistic: ``slopes``/``intercepts`` are the frozen
    ``a_{i,*}, b_{i,*}`` for *all* ``n`` samples, ``gram``/``moment`` the
    frozen ``C*``/``D*`` over the full dataset, and ``eigen`` the offline
    eigendecomposition of ``C*``.  For multinomial the per-sample state is
    ``probabilities``/``wx`` instead.

    Commits downdate ``gram``/``moment`` exactly but defer the ``O(m³)``
    re-eigendecomposition: ``eigen_stale`` flags the debt and
    ``pending_rows``/``pending_weights`` accumulate the removed (weighted)
    rows so the lazy refresh (:func:`~repro.core.priu_opt.\
refresh_frozen_eigen`) can choose the incremental eigenvalue correction
    when it is cheaper than a full recompute.  All three persist through
    checkpoints (store format v3), so a reloaded stale model refreshes on
    its first PrIU-opt query exactly like the in-process one.
    """

    t_s: int
    weights_at_ts_available: bool
    slopes: np.ndarray | None = None
    intercepts: np.ndarray | None = None
    probabilities: np.ndarray | None = None
    wx: np.ndarray | None = None
    gram: np.ndarray | None = None
    moment: np.ndarray | None = None
    eigenvectors: np.ndarray | None = None
    eigenvalues: np.ndarray | None = None
    eigen_stale: bool = False
    pending_rows: np.ndarray | None = None
    pending_weights: np.ndarray | None = None

    def nbytes(self) -> int:
        total = 0
        for arr in (
            self.slopes,
            self.intercepts,
            self.probabilities,
            self.wx,
            self.gram,
            self.moment,
            self.eigenvectors,
            self.eigenvalues,
            self.pending_rows,
            self.pending_weights,
        ):
            if arr is not None:
                total += int(arr.nbytes)
        return total

    def defer_eigen(self, rows: np.ndarray, weights: np.ndarray) -> None:
        """Record removed (weighted) rows whose eigen effect is deferred."""
        if self.pending_rows is None:
            self.pending_rows = np.asarray(rows, dtype=float).copy()
            self.pending_weights = np.asarray(weights, dtype=float).copy()
        else:
            self.pending_rows = np.vstack([self.pending_rows, rows])
            self.pending_weights = np.concatenate(
                [self.pending_weights, weights]
            )
        self.eigen_stale = True


@dataclass
class CommitReceipt:
    """Audit evidence for one committed deletion batch (GDPR trail).

    ``removed_original_ids`` are the batch's sample ids in *original*
    capture-run space (the slice ``deletion_log[log_start:log_end]``);
    ``store_version_before`` pins the id space the batch executed in
    (historical evidence only — version counters restart when a
    checkpoint reloads, the receipt ``index`` is the stable ordinal).
    ``timestamp`` comes from whatever clock the committing trainer was
    given (:class:`~repro.core.api.IncrementalTrainer` ``clock=``; the
    serving layer injects its own, so fake-clock tests get deterministic
    receipts).  Receipts persist in checkpoints (store format v3).
    """

    index: int
    removed_original_ids: np.ndarray
    log_start: int
    log_end: int
    store_version_before: int
    n_samples_before: int
    n_samples_after: int
    timestamp: float

    @property
    def n_removed(self) -> int:
        return int(self.removed_original_ids.size)

    def as_dict(self) -> dict:
        """JSON-serializable form (audit exports, fleet describe)."""
        return {
            "index": self.index,
            "removed_original_ids": self.removed_original_ids.tolist(),
            "log_start": self.log_start,
            "log_end": self.log_end,
            "store_version_before": self.store_version_before,
            "n_samples_before": self.n_samples_before,
            "n_samples_after": self.n_samples_after,
            "timestamp": self.timestamp,
        }


@dataclass
class CompactionStats:
    """What one :meth:`ProvenanceStore.compact` call changed.

    Everything is expressed in the *pre*-compaction layout so that a
    compiled :class:`~repro.core.replay_plan.ReplayPlan` built against the
    old store can patch itself (:meth:`~repro.core.replay_plan.ReplayPlan.\
refresh`) without re-deriving the hit set: ``dropped_slots`` are flat
    occurrence-slot indices (``record_offsets[t] + position``) into the old
    slot space, and ``affected_iterations`` / ``dropped_per_iteration``
    describe which per-iteration state must be re-derived.
    """

    removed: np.ndarray  # sorted-unique ids, pre-compaction space
    n_samples_before: int
    n_samples_after: int
    affected_iterations: np.ndarray  # sorted iterations that lost samples
    dropped_per_iteration: np.ndarray  # aligned with affected_iterations
    dropped_slots: np.ndarray  # sorted flat slot ids (old layout)
    dropped_occurrences: int

    @property
    def n_iterations_touched(self) -> int:
        return int(self.affected_iterations.size)


@dataclass
class ProvenanceStore:
    """Everything PrIU needs to replay an update without the nonlinearity."""

    task: str  # "linear" | "binary_logistic" | "multinomial_logistic"
    schedule: BatchSchedule
    learning_rate: float
    regularization: float
    n_samples: int
    n_features: int
    n_classes: int = 1
    records: list = field(default_factory=list)
    frozen: FrozenProvenance | None = None
    compression: str = "none"  # "none" | "svd"
    epsilon: float = 0.01
    sparse_mode: bool = False
    # Commit bookkeeping: ``n_original_samples`` is the sample count of the
    # capture run and ``deletion_log`` the cumulative committed removals in
    # *original* id space, in commit order.  Both stay None until the first
    # :meth:`compact`; checkpoints persist them so ``from_checkpoint`` can
    # slice the original training data down to the current survivors.
    n_original_samples: int | None = None
    deletion_log: np.ndarray | None = None
    # Audit receipts, one per compact() call, in commit order (v3).
    commit_receipts: list = field(default_factory=list)
    # Maintenance accounting: per-record count of exact correction columns
    # appended to truncated-SVD summaries by compact() and not yet
    # reclaimed by retruncate_summaries().  None until the first commit
    # widens a summary; persists through checkpoints (v3).
    svd_correction_columns: np.ndarray | None = None

    _occurrences: dict[int, list[tuple[int, int]]] | None = None
    _packed: PackedOccurrenceIndex | None = None
    # Bumped on every mutation; compiled ReplayPlans pin the version they
    # were built against and refuse to run against a changed store.
    _version: int = 0
    # Seqlock for lock-free readers of the (n_samples, _version) pair:
    # odd while a compact() is mutating, even otherwise.  A reader that
    # sees the same even value before and after its reads observed a
    # consistent id space (see DeletionServer.submit).
    _commit_seq: int = 0

    def add(self, record) -> None:
        self.records.append(record)
        # New records invalidate any previously built index.
        self._occurrences = None
        self._packed = None
        self._version += 1

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------ occurrence index
    def packed_index(self) -> PackedOccurrenceIndex:
        """The flat sorted occurrence table (built lazily, cached, shared).

        Both :class:`~repro.core.priu.PrIUUpdater` and
        :class:`~repro.core.replay_plan.ReplayPlan` resolve removal sets
        through this one cached structure, so ``fit()`` never pays for the
        index twice.
        """
        if self._packed is None:
            if not self.records:
                empty = np.empty(0, dtype=np.int64)
                self._packed = PackedOccurrenceIndex(
                    empty, empty.copy(), empty.copy()
                )
                return self._packed
            sizes = np.fromiter(
                (len(r.batch) for r in self.records),
                dtype=np.int64,
                count=len(self.records),
            )
            samples = np.concatenate(
                [np.asarray(r.batch, dtype=np.int64) for r in self.records]
            )
            iterations = np.repeat(
                np.arange(len(self.records), dtype=np.int64), sizes
            )
            positions = np.concatenate(
                [np.arange(s, dtype=np.int64) for s in sizes]
            )
            order = np.argsort(samples, kind="stable")
            self._packed = PackedOccurrenceIndex(
                samples=samples[order],
                iterations=iterations[order],
                positions=positions[order],
            )
        return self._packed

    def occurrences(self) -> dict[int, list[tuple[int, int]]]:
        """Inverted index: sample id -> [(iteration, position in batch)].

        Back-compat dict view over :meth:`packed_index`.
        """
        if self._occurrences is None:
            idx = self.packed_index()
            if len(idx) == 0:
                self._occurrences = {}
                return self._occurrences
            boundaries = np.flatnonzero(np.diff(idx.samples)) + 1
            keys = idx.samples[np.concatenate(([0], boundaries))]
            self._occurrences = {
                int(key): list(zip(ts.tolist(), ps.tolist()))
                for key, ts, ps in zip(
                    keys,
                    np.split(idx.iterations, boundaries),
                    np.split(idx.positions, boundaries),
                )
            }
        return self._occurrences

    def removed_positions(
        self, removed: np.ndarray
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Per-iteration (sample ids, batch positions) of removed samples.

        One searchsorted range scan per removed sample plus a group-by on the
        iteration column — the ``O(Δn · τB/n)`` output is produced with no
        per-occurrence Python work.
        """
        removed = np.asarray(removed, dtype=np.int64).ravel()
        ids, ts, pos = self.packed_index().lookup(removed)
        if ids.size == 0:
            return {}
        order = np.argsort(ts, kind="stable")
        ts, ids, pos = ts[order], ids[order], pos[order]
        boundaries = np.flatnonzero(np.diff(ts)) + 1
        keys = ts[np.concatenate(([0], boundaries))]
        return {
            int(t): (ids_group, pos_group)
            for t, ids_group, pos_group in zip(
                keys.tolist(),
                np.split(ids, boundaries),
                np.split(pos, boundaries),
            )
        }

    # ------------------------------------------------------------ compaction
    def survivor_original_ids(self) -> np.ndarray:
        """Original-space ids of the current samples, in current id order."""
        if self.n_original_samples is None or self.deletion_log is None:
            return np.arange(self.n_samples, dtype=np.int64)
        return np.delete(
            np.arange(self.n_original_samples, dtype=np.int64),
            np.unique(self.deletion_log),
        )

    def compact(
        self,
        removed,
        features,
        labels: np.ndarray,
        timestamp: float | None = None,
    ) -> CompactionStats:
        """Fold a committed deletion into the store itself.

        Unlike a replay — which answers the counterfactual and leaves the
        store describing the full capture run — ``compact`` makes the
        removal permanent: the samples' occurrence rows are dropped from
        every batch (per-sample interpolation state with them), their
        contributions are subtracted from the cached summaries and moments,
        surviving ids are remapped onto the packed ``[0, n - Δn)`` space,
        and the packed occurrence index is rebuilt in one vectorized pass
        (no re-sort: dropping rows and shifting ids both preserve order).

        ``features``/``labels`` are the *pre*-compaction training data (the
        removed rows' features are needed to form the subtracted
        contributions).  Dense summaries are patched exactly; SVD summaries
        get exact rank-``Δ`` correction factors appended (re-truncating
        would change replay answers by ``O(ε)``); sparse records carry no
        summaries.  Frozen PrIU-opt state is compacted the same way, with
        the offline eigendecomposition recomputed.

        Replaying the compacted store with removal set ``T`` is numerically
        identical (BLAS reduction-order noise only) to replaying the
        original store with ``committed ∪ T`` — the contract
        ``tests/core/test_commit.py`` property-tests.
        """
        removed = normalize_removed_indices(removed)
        n_before = self.n_samples
        if features.shape[0] != n_before or (
            np.asarray(labels).shape[0] != n_before
        ):
            raise ValueError(
                f"compact() needs the pre-compaction training data "
                f"({n_before} rows); got features with {features.shape[0]} "
                f"and labels with {np.asarray(labels).shape[0]} — slice to "
                "the survivors only *after* compacting"
            )
        if removed.size:
            if removed[0] < 0 or removed[-1] >= n_before:
                raise ValueError(
                    f"removal ids must lie in [0, {n_before}); got range "
                    f"[{removed[0]}, {removed[-1]}]"
                )
            if removed.size >= n_before:
                raise ValueError("cannot delete every training sample")

        self._commit_seq += 1  # odd: mutation in progress
        try:
            return self._compact_locked(
                removed, features, labels, n_before, timestamp
            )
        finally:
            self._commit_seq += 1  # even again: readers may trust the pair

    def _compact_locked(
        self,
        removed: np.ndarray,
        features,
        labels,
        n_before: int,
        timestamp: float | None,
    ) -> CompactionStats:
        index = self.packed_index()
        removed_map = self.removed_positions(removed)
        sizes = np.fromiter(
            (len(r.batch) for r in self.records),
            dtype=np.int64,
            count=len(self.records),
        )
        old_offsets = np.concatenate(([0], np.cumsum(sizes)))

        # ---- per-record state: drop removed rows, patch summaries/moments
        for t, (ids, positions) in removed_map.items():
            appended = self._compact_record(
                self.records[t], ids, positions, features, labels
            )
            if appended:
                # Maintenance accounting: exact correction columns widen
                # the SVD factors until retruncate_summaries() reclaims
                # them.
                if self.svd_correction_columns is None:
                    self.svd_correction_columns = np.zeros(
                        len(self.records), dtype=np.int64
                    )
                self.svd_correction_columns[t] += appended
        # ---- remap every surviving batch id onto the packed space
        if removed.size:
            for record in self.records:
                record.batch = remap_surviving_ids(record.batch, removed)
        # ---- frozen PrIU-opt state
        if self.frozen is not None and removed.size:
            self._compact_frozen(removed, features, labels)

        # ---- occurrence index: one vectorized drop-and-shift pass
        pos = np.searchsorted(removed, index.samples, side="left")
        member = np.zeros(len(index), dtype=bool)
        if removed.size:
            in_range = pos < removed.size
            member[in_range] = (
                removed[pos[in_range]] == index.samples[in_range]
            )
        keep = ~member
        dropped_slots = np.sort(
            old_offsets[index.iterations[member]] + index.positions[member]
        )
        kept_iters = index.iterations[keep]
        kept_slots = old_offsets[kept_iters] + index.positions[keep]
        # Position shift: dropped slots below this occurrence in its batch.
        shift = np.searchsorted(dropped_slots, kept_slots) - np.searchsorted(
            dropped_slots, old_offsets[kept_iters]
        )
        new_index = PackedOccurrenceIndex(
            samples=remap_surviving_ids(index.samples[keep], removed),
            iterations=kept_iters,
            positions=index.positions[keep] - shift,
        )
        affected, per_iter = np.unique(
            index.iterations[member], return_counts=True
        )

        # ---- bookkeeping: deletion log, receipts, schedule, sizes, version
        if self.n_original_samples is None:
            self.n_original_samples = n_before
        survivors = self.survivor_original_ids()
        removed_original = survivors[removed]
        log_start = 0 if self.deletion_log is None else int(
            self.deletion_log.size
        )
        self.deletion_log = (
            removed_original
            if self.deletion_log is None
            else np.concatenate([self.deletion_log, removed_original])
        )
        if timestamp is None:
            # Served commits never land here: IncrementalTrainer.remove
            # always passes timestamp=self._now(), which prefers the
            # injected serving Clock.  This fallback stamps direct
            # store-level compact() calls only.
            timestamp = time.time()  # reprolint: allow[R001] direct store-level compact() without a trainer; served commits always pass timestamp=
        self.commit_receipts.append(
            CommitReceipt(
                index=len(self.commit_receipts),
                removed_original_ids=removed_original.copy(),
                log_start=log_start,
                log_end=log_start + int(removed.size),
                store_version_before=self._version,
                n_samples_before=n_before,
                n_samples_after=n_before - int(removed.size),
                timestamp=float(timestamp),
            )
        )
        self.n_samples = n_before - int(removed.size)
        # The seeded schedule no longer regenerates the compacted batches;
        # materialize it from the records (checkpoints do the same).
        self.schedule = BatchSchedule(
            n_samples=self.n_samples,
            batch_size=self.schedule.batch_size,
            n_iterations=len(self.records),
            seed=self.schedule.seed,
            kind="materialized",
            batches=[record.batch for record in self.records],
        )
        self._version += 1
        self._occurrences = None
        self._packed = new_index
        return CompactionStats(
            removed=removed,
            n_samples_before=n_before,
            n_samples_after=self.n_samples,
            affected_iterations=affected,
            dropped_per_iteration=per_iter,
            dropped_slots=dropped_slots,
            dropped_occurrences=int(member.sum()),
        )

    def _compact_record(
        self, record, ids: np.ndarray, positions: np.ndarray, features, labels
    ) -> int:
        """Drop ``positions`` from one record, subtracting their contributions.

        Returns the number of exact correction columns appended to a
        truncated-SVD summary (0 for dense/sparse records) — the
        maintenance accounting :meth:`retruncate_summaries` later
        reclaims.
        """
        mask = np.ones(len(record.batch), dtype=bool)
        mask[positions] = False
        appended = 0
        rows = None
        if record.summary is not None or (
            isinstance(record, LinearRecord) and record.moment.size
        ):
            rows = np.asarray(features[ids], dtype=float)
        if isinstance(record, LinearRecord):
            if rows is not None:
                if isinstance(record.summary, TruncatedSummary):
                    appended = rows.shape[0]
                record.summary = self._shrunk_summary(record.summary, rows, None)
                if record.moment.size:
                    record.moment = record.moment - rows.T @ labels[ids].astype(
                        float
                    )
        elif isinstance(record, LogisticRecord):
            slopes_hit = record.slopes[positions]
            if record.summary is not None:
                if isinstance(record.summary, TruncatedSummary):
                    appended = rows.shape[0]
                record.summary = self._shrunk_summary(
                    record.summary, rows, slopes_hit
                )
            if record.moment.size:
                record.moment = record.moment - rows.T @ (
                    record.intercepts[positions] * labels[ids].astype(float)
                )
            record.slopes = record.slopes[mask]
            record.intercepts = record.intercepts[mask]
        elif isinstance(record, MultinomialRecord):
            if rows is None:
                block = features[ids]
                rows = np.asarray(
                    block.todense() if hasattr(block, "todense") else block,
                    dtype=float,
                )
            probs_hit = record.probabilities[positions]
            wx_hit = record.wx[positions]
            y = labels[ids].astype(int)
            pu = np.einsum("ik,ik->i", probs_hit, wx_hit)
            lam_u = probs_hit * wx_hit - probs_hit * pu[:, None]
            coeff = lam_u - probs_hit
            coeff[np.arange(len(ids)), y] += 1.0
            record.moment = record.moment - coeff.T @ rows
            if record.summary is not None:
                if isinstance(record.summary, TruncatedSummary):
                    appended = len(ids) * probs_hit.shape[1]
                record.summary = self._shrunk_multinomial_summary(
                    record.summary, probs_hit, rows
                )
            record.probabilities = record.probabilities[mask]
            record.wx = record.wx[mask]
        record.batch = record.batch[mask]
        return appended

    @staticmethod
    def _shrunk_summary(
        summary: Summary, rows: np.ndarray, slopes: np.ndarray | None
    ) -> Summary:
        """``G - Σ a_i x_i x_iᵀ`` in whichever representation ``G`` uses.

        Dense summaries are patched exactly.  Truncated-SVD summaries get
        the removed samples appended as exact rank-1 correction factors
        (``left ⟵ [P | -a_i x_i]``, ``right ⟵ [V | x_i]``) so the compacted
        operator equals the pre-compaction operator minus the exact deltas —
        the same arithmetic a replay of the uncompacted store performs.
        """
        weighted = rows if slopes is None else rows * slopes[:, None]
        if isinstance(summary, TruncatedSummary):
            return TruncatedSummary(
                left=np.hstack([summary.left, -weighted.T]),
                right=np.hstack([summary.right, rows.T]),
            )
        return summary - weighted.T @ rows

    @staticmethod
    def _shrunk_multinomial_summary(
        summary: Summary, probs: np.ndarray, rows: np.ndarray
    ) -> Summary:
        """``C + Σ_i Λ_i ⊗ x_i x_iᵀ`` (the summary caches ``-Σ Λ ⊗ xxᵀ``)."""
        n_hits, q = probs.shape
        m = rows.shape[1]
        lam = -np.einsum("ik,il->ikl", probs, probs)
        lam[:, np.arange(q), np.arange(q)] += probs
        if isinstance(summary, TruncatedSummary):
            # Λ_i is PSD with rank ≤ q: expand into q weighted Kronecker
            # columns per removed sample, appended as exact corrections.
            evals, evecs = np.linalg.eigh(lam)  # (h, q), (h, q, q)
            kron = np.einsum("hqk,hm->hkqm", evecs, rows).reshape(
                n_hits * q, q * m
            )
            weights = evals.reshape(-1)
            return TruncatedSummary(
                left=np.hstack([summary.left, (kron * weights[:, None]).T]),
                right=np.hstack([summary.right, kron.T]),
            )
        contrib = np.einsum("hkl,hm,hn->kmln", lam, rows, rows).reshape(
            q * m, q * m
        )
        return summary + contrib

    def _compact_frozen(self, removed: np.ndarray, features, labels) -> None:
        """Compact the PrIU-opt frozen full-dataset state (Sec. 5.4).

        The frozen gram/moment are downdated *exactly*; the offline
        eigendecomposition is **not** recomputed here — the removed
        (weighted) rows are recorded via :meth:`FrozenProvenance.\
defer_eigen` and the debt is discharged lazily by the first PrIU-opt
        update (or a :meth:`~repro.core.api.IncrementalTrainer.maintain`
        call), so a commit-heavy serving process that answers through the
        compiled plan never pays the ``O(m³)`` (or ``O((qm)³)``) factor.
        """
        frozen = self.frozen
        needs_rows = frozen.gram is not None
        rows = (
            np.asarray(features[removed], dtype=float) if needs_rows else None
        )
        if frozen.slopes is not None:  # binary logistic
            if frozen.gram is not None:
                slopes_r = frozen.slopes[removed]
                intercepts_r = frozen.intercepts[removed]
                y = labels[removed].astype(float)
                frozen.gram = frozen.gram - rows.T @ (rows * slopes_r[:, None])
                frozen.moment = frozen.moment - rows.T @ (intercepts_r * y)
                if frozen.eigenvectors is not None:
                    frozen.defer_eigen(rows, slopes_r)
            frozen.slopes = np.delete(frozen.slopes, removed)
            frozen.intercepts = np.delete(frozen.intercepts, removed)
        elif frozen.probabilities is not None:  # multinomial
            if frozen.gram is not None:
                probs_r = frozen.probabilities[removed]
                wx_r = frozen.wx[removed]
                y = labels[removed].astype(int)
                q = probs_r.shape[1]
                lam = -np.einsum("ik,il->ikl", probs_r, probs_r)
                lam[:, np.arange(q), np.arange(q)] += probs_r
                contrib = np.einsum(
                    "hkl,hm,hn->kmln", lam, rows, rows
                ).reshape(frozen.gram.shape)
                frozen.gram = frozen.gram + contrib
                pu = np.einsum("ik,ik->i", probs_r, wx_r)
                lam_u = probs_r * wx_r - probs_r * pu[:, None]
                coeff = lam_u - probs_r
                coeff[np.arange(removed.size), y] += 1.0
                frozen.moment = frozen.moment - (coeff.T @ rows).ravel()
                if frozen.eigenvectors is not None:
                    # Same Kronecker rank-q expansion the tail state uses:
                    # ΔC* = Σ_k λ_k kron_k kron_kᵀ with the *negated*
                    # eigenvalues as subtraction weights.
                    evals, evecs = np.linalg.eigh(lam)
                    kron_rows = np.einsum(
                        "iqk,im->ikqm", evecs, rows
                    ).reshape(removed.size * q, -1)
                    frozen.defer_eigen(kron_rows, -evals.reshape(-1))
            frozen.probabilities = np.delete(frozen.probabilities, removed, axis=0)
            frozen.wx = np.delete(frozen.wx, removed, axis=0)

    # ----------------------------------------------------------- maintenance
    def retruncate_summaries(
        self,
        epsilon: float | None = None,
        min_columns: int = 1,
        incremental: bool = True,
    ) -> dict:
        """Reclaim the correction columns commits appended to SVD summaries.

        Every record whose summary accumulated at least ``min_columns``
        exact correction columns (:attr:`svd_correction_columns`) is
        re-truncated through :func:`~repro.linalg.svd.retruncate_summary`
        — ``epsilon=None`` keeps the operator to machine precision (the
        answer contract survives at atol 1e-10), an explicit ε applies
        the paper's lossy criterion with the worst error bound surfaced
        in the receipt.  Bumps the store version (compiled plans must
        re-sync their summary references via :meth:`~repro.core.\
replay_plan.ReplayPlan.resync_summaries`); the mutation is wrapped in
        the commit seqlock so concurrent submit-time readers always see a
        consistent store.

        ``incremental=True`` (the default) hands each record's appended
        correction-column count to :func:`~repro.linalg.svd.\
retruncate_summary`, which folds few-column updates into the existing
        orthogonal factors instead of re-running thin-QR over the full
        width — same answers to machine precision, dramatically cheaper
        when maintenance runs often.  ``False`` forces the full path for
        every record.

        Returns a receipt dict: ``summaries`` (how many re-truncated),
        ``columns_before``/``columns_after`` (total factor widths of the
        touched summaries), ``max_error_bound`` / ``max_relative_error``
        (exact-vs-retruncated 2-norm distance, absolute and relative to
        σ₁), ``max_rank_after``, ``incremental_updates``/``full_updates``
        (which path each record took), and ``iterations`` (the touched
        record indices, for plan re-sync).
        """
        empty = np.empty(0, dtype=np.int64)
        if self.svd_correction_columns is None:
            return {
                "summaries": 0,
                "columns_before": 0,
                "columns_after": 0,
                "max_error_bound": 0.0,
                "max_relative_error": 0.0,
                "max_rank_after": 0,
                "incremental_updates": 0,
                "full_updates": 0,
                "iterations": empty,
            }
        touched = [
            int(t)
            for t in np.flatnonzero(self.svd_correction_columns >= min_columns)
            if isinstance(self.records[t].summary, TruncatedSummary)
        ]
        if not touched:
            return {
                "summaries": 0,
                "columns_before": 0,
                "columns_after": 0,
                "max_error_bound": 0.0,
                "max_relative_error": 0.0,
                "max_rank_after": 0,
                "incremental_updates": 0,
                "full_updates": 0,
                "iterations": empty,
            }
        columns_before = columns_after = max_rank_after = 0
        incremental_updates = 0
        max_bound = max_relative = 0.0
        self._commit_seq += 1  # odd: mutation in progress
        try:
            for t in touched:
                record = self.records[t]
                appended = (
                    int(self.svd_correction_columns[t]) if incremental
                    else None
                )
                result = retruncate_summary(
                    record.summary, epsilon=epsilon, appended=appended
                )
                record.summary = result.summary
                columns_before += result.rank_before
                columns_after += result.rank_after
                max_rank_after = max(max_rank_after, result.rank_after)
                max_bound = max(max_bound, result.error_bound)
                max_relative = max(max_relative, result.error_bound_relative)
                incremental_updates += result.method == "incremental"
            self.svd_correction_columns[touched] = 0
            self._version += 1
        finally:
            self._commit_seq += 1  # even again
        return {
            "summaries": len(touched),
            "columns_before": columns_before,
            "columns_after": columns_after,
            "max_error_bound": max_bound,
            "max_relative_error": max_relative,
            "max_rank_after": max_rank_after,
            "incremental_updates": incremental_updates,
            "full_updates": len(touched) - incremental_updates,
            "iterations": np.asarray(touched, dtype=np.int64),
        }

    # -------------------------------------------------------------- memory
    def nbytes(self) -> int:
        """Provenance memory footprint (Table 3's PrIU/PrIU-opt columns)."""
        total = sum(record.nbytes() for record in self.records)
        if self.frozen is not None:
            total += self.frozen.nbytes()
        return int(total)

    def gigabytes(self) -> float:
        return self.nbytes() / 1e9
