"""The provenance store: PrIU's cached per-iteration summaries (Sec. 5).

During the original training run PrIU caches, for every iteration ``t``, the
numeric image of the provenance-annotated intermediates of Equations 8/10:

* linear regression — ``G^(t) = Σ_{i∈B(t)} x_i x_iᵀ`` and
  ``d^(t) = Σ_{i∈B(t)} x_i y_i``;
* binary logistic — ``C^(t) = Σ a_{i,(t)} x_i x_iᵀ`` and
  ``D^(t) = Σ b_{i,(t)} y_i x_i`` plus the per-sample interpolation
  coefficients themselves (needed to form ``ΔC^(t)``/``ΔD^(t)`` for an
  arbitrary removal set later);
* multinomial logistic — the frozen per-sample softmax state
  (probabilities ``p_i`` and logits-times-weights ``u_i = W^(t) x_i``)
  from which the removed samples' block contributions are reconstructed,
  plus the aggregated ``C^(t)``/``D^(t)``.

``m × m`` (or ``mq × mq``) summaries are optionally stored as truncated-SVD
factor pairs (:class:`~repro.linalg.svd.TruncatedSummary`) per Theorems 6/8.

The store also keeps an inverted *occurrence index* ``sample id → iterations
containing it`` so an update touching ``Δn`` samples enumerates only the
``O(Δn · τB/n)`` affected (iteration, sample) pairs instead of scanning every
batch.  The index is materialized as a :class:`PackedOccurrenceIndex` —
three flat, contiguous arrays sorted by sample id — so lookups are
``np.searchsorted`` range scans rather than Python dict walks; the legacy
dict APIs (:meth:`ProvenanceStore.occurrences` /
:meth:`ProvenanceStore.removed_positions`) are thin views over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..linalg.svd import TruncatedSummary
from ..models.batching import BatchSchedule

Summary = Union[TruncatedSummary, np.ndarray, None]


def normalize_removed_indices(indices, assume_unique: bool = False) -> np.ndarray:
    """Canonicalize a removal set to a sorted, unique int64 array.

    Accepts ndarrays, sets, lists, tuples, ranges and generators without
    round-tripping arrays through Python lists.  ``assume_unique`` skips the
    dedup (the caller already ran it — e.g. the facade dedupes once before
    timing starts) but still guarantees the sorted contract.
    """
    if isinstance(indices, np.ndarray):
        arr = indices.ravel().astype(np.int64, copy=False)
    elif isinstance(indices, (set, frozenset)):
        arr = np.fromiter(indices, dtype=np.int64, count=len(indices))
        arr.sort()
        return arr
    else:
        arr = np.asarray(tuple(indices), dtype=np.int64)
    if assume_unique:
        if arr.size > 1 and np.any(arr[1:] < arr[:-1]):
            arr = np.sort(arr)
        return arr
    return np.unique(arr)


@dataclass
class PackedOccurrenceIndex:
    """Flat structure-of-arrays occurrence table, sorted by sample id.

    Row ``j`` says: ``samples[j]`` sits at ``positions[j]`` inside the batch
    of iteration ``iterations[j]``.  Because ``samples`` is sorted (stably,
    so per-sample runs stay in iteration order), the occurrences of any
    sample are one ``np.searchsorted`` range — the whole lookup for a
    removal set is a handful of vectorized gathers instead of an
    ``O(Δn · τB/n)`` Python loop.
    """

    samples: np.ndarray  # (H,) sorted sample ids
    iterations: np.ndarray  # (H,) iteration of each occurrence
    positions: np.ndarray  # (H,) position inside that iteration's batch

    def __len__(self) -> int:
        return int(self.samples.size)

    def lookup(
        self, removed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All occurrences of ``removed``: ``(sample ids, iterations, positions)``.

        ``removed`` must be sorted-unique (see
        :func:`normalize_removed_indices`); ids never seen in any batch are
        silently skipped, matching the old dict ``get(..., ())`` behavior.
        """
        removed = np.asarray(removed, dtype=np.int64)
        lo = np.searchsorted(self.samples, removed, side="left")
        hi = np.searchsorted(self.samples, removed, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        # Expand each [lo, hi) run into explicit row numbers.
        run_starts = np.repeat(lo, counts)
        within = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        sel = run_starts + within
        return self.samples[sel], self.iterations[sel], self.positions[sel]

    def nbytes(self) -> int:
        return int(
            self.samples.nbytes + self.iterations.nbytes + self.positions.nbytes
        )


def _summary_nbytes(summary: Summary) -> int:
    if summary is None:
        return 0
    if isinstance(summary, TruncatedSummary):
        return summary.nbytes()
    return int(summary.nbytes)


def apply_summary(summary: Summary, vector: np.ndarray) -> np.ndarray:
    """``G w`` through whichever representation the summary uses."""
    if summary is None:
        raise ValueError("iteration has no cached summary to apply")
    if isinstance(summary, TruncatedSummary):
        return summary.apply(vector)
    return summary @ vector


@dataclass
class LinearRecord:
    """Per-iteration cache for linear regression (Eq. 13/14)."""

    batch: np.ndarray
    summary: Summary  # G^(t) or its SVD factors
    moment: np.ndarray  # d^(t)

    def nbytes(self) -> int:
        return int(
            self.batch.nbytes + _summary_nbytes(self.summary) + self.moment.nbytes
        )


@dataclass
class LogisticRecord:
    """Per-iteration cache for binary logistic regression (Eq. 19/20)."""

    batch: np.ndarray
    slopes: np.ndarray  # a_{i,(t)}, aligned with batch
    intercepts: np.ndarray  # b_{i,(t)}
    summary: Summary  # C^(t) or its SVD factors
    moment: np.ndarray  # D^(t)

    def nbytes(self) -> int:
        return int(
            self.batch.nbytes
            + self.slopes.nbytes
            + self.intercepts.nbytes
            + _summary_nbytes(self.summary)
            + self.moment.nbytes
        )


@dataclass
class MultinomialRecord:
    """Per-iteration cache for multinomial logistic regression.

    ``probabilities`` and ``wx`` (``u_i = W^(t) x_i``) are enough to rebuild
    any removed sample's contribution to ``C^(t)`` and ``D^(t)``:
    with ``Λ_i = diag(p_i) - p_i p_iᵀ``,

        ``ΔC^(t)(W) = Σ_{i∈R} Λ_i (W x_i) x_iᵀ``
        ``ΔD^(t)   = Σ_{i∈R} (Λ_i u_i - p_i + e_{y_i}) x_iᵀ``.
    """

    batch: np.ndarray
    probabilities: np.ndarray  # B × q
    wx: np.ndarray  # B × q : W^(t) x_i per batch sample
    summary: Summary  # C^(t) on the vec'd parameter space, or factors
    moment: np.ndarray  # D^(t) (q × m)

    def nbytes(self) -> int:
        return int(
            self.batch.nbytes
            + self.probabilities.nbytes
            + self.wx.nbytes
            + _summary_nbytes(self.summary)
            + self.moment.nbytes
        )


@dataclass
class FrozenProvenance:
    """PrIU-opt logistic: full-dataset frozen coefficients at ``t_s`` (Sec 5.4).

    For binary logistic: ``slopes``/``intercepts`` are the frozen
    ``a_{i,*}, b_{i,*}`` for *all* ``n`` samples, ``gram``/``moment`` the
    frozen ``C*``/``D*`` over the full dataset, and ``eigen`` the offline
    eigendecomposition of ``C*``.  For multinomial the per-sample state is
    ``probabilities``/``wx`` instead.
    """

    t_s: int
    weights_at_ts_available: bool
    slopes: np.ndarray | None = None
    intercepts: np.ndarray | None = None
    probabilities: np.ndarray | None = None
    wx: np.ndarray | None = None
    gram: np.ndarray | None = None
    moment: np.ndarray | None = None
    eigenvectors: np.ndarray | None = None
    eigenvalues: np.ndarray | None = None

    def nbytes(self) -> int:
        total = 0
        for arr in (
            self.slopes,
            self.intercepts,
            self.probabilities,
            self.wx,
            self.gram,
            self.moment,
            self.eigenvectors,
            self.eigenvalues,
        ):
            if arr is not None:
                total += int(arr.nbytes)
        return total


@dataclass
class ProvenanceStore:
    """Everything PrIU needs to replay an update without the nonlinearity."""

    task: str  # "linear" | "binary_logistic" | "multinomial_logistic"
    schedule: BatchSchedule
    learning_rate: float
    regularization: float
    n_samples: int
    n_features: int
    n_classes: int = 1
    records: list = field(default_factory=list)
    frozen: FrozenProvenance | None = None
    compression: str = "none"  # "none" | "svd"
    epsilon: float = 0.01
    sparse_mode: bool = False

    _occurrences: dict[int, list[tuple[int, int]]] | None = None
    _packed: PackedOccurrenceIndex | None = None
    # Bumped on every mutation; compiled ReplayPlans pin the version they
    # were built against and refuse to run against a changed store.
    _version: int = 0

    def add(self, record) -> None:
        self.records.append(record)
        # New records invalidate any previously built index.
        self._occurrences = None
        self._packed = None
        self._version += 1

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------ occurrence index
    def packed_index(self) -> PackedOccurrenceIndex:
        """The flat sorted occurrence table (built lazily, cached, shared).

        Both :class:`~repro.core.priu.PrIUUpdater` and
        :class:`~repro.core.replay_plan.ReplayPlan` resolve removal sets
        through this one cached structure, so ``fit()`` never pays for the
        index twice.
        """
        if self._packed is None:
            if not self.records:
                empty = np.empty(0, dtype=np.int64)
                self._packed = PackedOccurrenceIndex(
                    empty, empty.copy(), empty.copy()
                )
                return self._packed
            sizes = np.fromiter(
                (len(r.batch) for r in self.records),
                dtype=np.int64,
                count=len(self.records),
            )
            samples = np.concatenate(
                [np.asarray(r.batch, dtype=np.int64) for r in self.records]
            )
            iterations = np.repeat(
                np.arange(len(self.records), dtype=np.int64), sizes
            )
            positions = np.concatenate(
                [np.arange(s, dtype=np.int64) for s in sizes]
            )
            order = np.argsort(samples, kind="stable")
            self._packed = PackedOccurrenceIndex(
                samples=samples[order],
                iterations=iterations[order],
                positions=positions[order],
            )
        return self._packed

    def occurrences(self) -> dict[int, list[tuple[int, int]]]:
        """Inverted index: sample id -> [(iteration, position in batch)].

        Back-compat dict view over :meth:`packed_index`.
        """
        if self._occurrences is None:
            idx = self.packed_index()
            if len(idx) == 0:
                self._occurrences = {}
                return self._occurrences
            boundaries = np.flatnonzero(np.diff(idx.samples)) + 1
            keys = idx.samples[np.concatenate(([0], boundaries))]
            self._occurrences = {
                int(key): list(zip(ts.tolist(), ps.tolist()))
                for key, ts, ps in zip(
                    keys,
                    np.split(idx.iterations, boundaries),
                    np.split(idx.positions, boundaries),
                )
            }
        return self._occurrences

    def removed_positions(
        self, removed: np.ndarray
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Per-iteration (sample ids, batch positions) of removed samples.

        One searchsorted range scan per removed sample plus a group-by on the
        iteration column — the ``O(Δn · τB/n)`` output is produced with no
        per-occurrence Python work.
        """
        removed = np.asarray(removed, dtype=np.int64).ravel()
        ids, ts, pos = self.packed_index().lookup(removed)
        if ids.size == 0:
            return {}
        order = np.argsort(ts, kind="stable")
        ts, ids, pos = ts[order], ids[order], pos[order]
        boundaries = np.flatnonzero(np.diff(ts)) + 1
        keys = ts[np.concatenate(([0], boundaries))]
        return {
            int(t): (ids_group, pos_group)
            for t, ids_group, pos_group in zip(
                keys.tolist(),
                np.split(ids, boundaries),
                np.split(pos, boundaries),
            )
        }

    # -------------------------------------------------------------- memory
    def nbytes(self) -> int:
        """Provenance memory footprint (Table 3's PrIU/PrIU-opt columns)."""
        total = sum(record.nbytes() for record in self.records)
        if self.frozen is not None:
            total += self.frozen.nbytes()
        return int(total)

    def gigabytes(self) -> float:
        return self.nbytes() / 1e9
