"""High-level facade: train once, delete subsets many times.

:class:`IncrementalTrainer` wires the substrates together the way the paper's
evaluation uses them: fit an initial model while capturing provenance
(offline), then answer any number of "what if these samples were removed?"
questions through PrIU / PrIU-opt, or through the baselines (BaseL retraining,
Closed-form, INFL) for comparison.

>>> trainer = IncrementalTrainer("binary_logistic", learning_rate=1e-3,
...                              regularization=0.01, batch_size=64,
...                              n_iterations=200)
>>> trainer.fit(features, labels)
>>> outcome = trainer.remove([3, 17, 256])
>>> outcome.weights  # the model as if those samples were never seen
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..linalg.interpolation import sigmoid_complement_interpolator
from ..linalg.matrix_utils import is_sparse
from ..models.batching import make_schedule
from ..models.closed_form import IncrementalClosedForm
from ..models.influence import InfluenceFunctionUpdater
from ..models.sgd import TrainingResult, train, objective_for
from .capture import train_with_capture
from .costmodel import Calibration, CostEstimate, CostModel
from .maintenance import MaintenanceCost, MaintenancePolicy, MaintenanceReport
from .priu import PrIUUpdater
from .priu_opt import (
    PrIUOptLinearUpdater,
    PrIUOptLogisticUpdater,
    refresh_frozen_eigen,
)
from .provenance_store import normalize_removed_indices
from .replay_plan import ReplayPlan
from .serialization import (
    PLAN_FILENAME,
    STORE_FILENAME,
    commit_checkpoint,
    load_plan,
    load_store,
    recover_checkpoint,
    save_plan,
    save_store,
    staged_path,
)

TASKS = ("linear", "binary_logistic", "multinomial_logistic")


@dataclass
class UpdateOutcome:
    """Result of one incremental update (or baseline) run.

    ``store_version`` pins the provenance-store state the answer was
    computed against; :meth:`IncrementalTrainer.commit` refuses outcomes
    from before an earlier commit (their id space is stale).
    """

    weights: np.ndarray
    method: str
    seconds: float
    removed: np.ndarray
    store_version: int | None = None


class IncrementalTrainer:
    """Train-once / delete-many facade over PrIU, PrIU-opt and the baselines.

    Update-method semantics (``method=`` of :meth:`remove` /
    :meth:`remove_many`; constructor ``method=`` picks the default):

    ``"priu"``
        The provenance replay (Sec. 5.1/5.3) through the compiled
        :class:`~repro.core.replay_plan.ReplayPlan` — the production hot
        path.  Falls back to the uncompiled updater only where the plan is
        unsupported (sparse multinomial).
    ``"priu-seq"``
        The *uncompiled* per-record reference implementation
        (:class:`~repro.core.priu.PrIUUpdater`), kept for verification and
        benchmarking; numerically it is the same recursion, so plan
        results match it to BLAS reduction-order noise (≲1e-12).
    ``"priu-opt"``
        The small-feature-space optimizations (Sec. 5.2/5.4: closed
        recursion for linear, frozen-provenance eigen tail for logistic).
        An *approximation* controlled by ``epsilon``/``freeze_fraction`` —
        its output legitimately differs from ``"priu"`` within the
        paper's error bounds.  Unavailable for sparse or very wide
        configurations (``opt_feature_limit``).
    ``"auto"`` (constructor only)
        ``"priu-opt"`` whenever it is available, else ``"priu"``.

    Baselines live on their own methods: :meth:`retrain` (BaseL),
    :meth:`closed_form`, :meth:`influence`.  A fitted trainer round-trips
    through :meth:`save_checkpoint` / :meth:`from_checkpoint` so a fresh
    serving process answers without re-running capture.
    """

    def __init__(
        self,
        task: str,
        learning_rate: float,
        regularization: float,
        batch_size: int,
        n_iterations: int,
        n_classes: int | None = None,
        method: str = "auto",
        seed: int = 0,
        epsilon: float = 0.01,
        freeze_fraction: float = 0.7,
        interpolation_intervals: int = 100_000,
        schedule_kind: str = "mb-sgd",
        max_dense_params: int = 2500,
        opt_feature_limit: int = 2500,
        plan_cache_sparse_blocks: bool = True,
        plan_refresh_threshold: float = 0.25,
        eigen_correction_limit: int = 0,
        kernel_block_size: int | None = None,
        cost_model=None,
        clock=None,
    ) -> None:
        if task not in TASKS:
            raise ValueError(f"task must be one of {TASKS}")
        if method not in ("auto", "priu", "priu-opt"):
            raise ValueError("method must be auto, priu or priu-opt")
        self.task = task
        self.learning_rate = float(learning_rate)
        self.regularization = float(regularization)
        self.batch_size = int(batch_size)
        self.n_iterations = int(n_iterations)
        self.n_classes = n_classes
        self.method = method
        self.seed = int(seed)
        self.epsilon = float(epsilon)
        self.freeze_fraction = float(freeze_fraction)
        self.interpolation_intervals = int(interpolation_intervals)
        self.schedule_kind = schedule_kind
        self.max_dense_params = int(max_dense_params)
        self.opt_feature_limit = int(opt_feature_limit)
        # Memory/time trade for sparse workloads: the plan's pre-sliced CSR
        # batch blocks hold ~τB/n copies of the dataset; disable to re-slice
        # inside the replay loop instead.
        self.plan_cache_sparse_blocks = bool(plan_cache_sparse_blocks)
        # Commit path: incremental ReplayPlan.refresh() while a commit
        # touches at most this fraction of the iterations, full recompile
        # beyond it.
        self.plan_refresh_threshold = float(plan_refresh_threshold)
        # Maintenance: deferred PrIU-opt eigen refreshes covering at most
        # this many removed rows use the incremental eigenvalue correction
        # instead of a full re-eigendecomposition (0 = always exact).
        self.eigen_correction_limit = int(eigen_correction_limit)
        # Replay kernel: iterations fused per block descriptor
        # (repro.core.kernels).  None -> the module default for dense SVD
        # plans, <= 1 -> the bit-identical legacy per-iteration engine.
        # An attached cost model may veto fusion when its calibrated
        # per-iteration timings say the scalar path wins.
        self.kernel_block_size = kernel_block_size
        # Optional repro.core.costmodel.CostModel.  When attached, commits
        # pick refresh-vs-recompile from its calibrated crossing point
        # (plan_refresh_threshold becomes the uncalibrated fallback) and
        # every commit receipt feeds its online calibration.
        self.cost_model = cost_model
        # Timestamp source for commit audit receipts: anything with a
        # ``now()`` method (e.g. a serving Clock).  None -> wall time.
        self.clock = clock
        self._fitted = False

    def _now(self) -> float:
        """Receipt timestamp from the injected clock (wall time default).

        Commit-mode servers always inject their serving clock at
        construction, so served traffic stamps receipts through
        ``Clock.timestamp()`` (epoch-meaningful on the real clock,
        deterministic on fakes; ``now()`` is the fallback for bare
        ``now()``-only clock objects).  The wall-clock branch below only
        serves *standalone* trainers — no serving layer, no clock to
        inject — and core deliberately does not import serving to
        default one.
        """
        if self.clock is not None:
            stamp = getattr(self.clock, "timestamp", self.clock.now)
            return float(stamp())
        return time.time()  # reprolint: allow[R001] receipt stamping for clock-less standalone trainers; commit-mode servers always inject their Clock

    def _plan_block_size(self) -> int | None:
        """Replay-kernel block size after the cost model's veto.

        The configured ``kernel_block_size`` is the request; an attached
        cost model that has *measured* the blocked path losing to the
        scalar one (``observe_replay`` calibration) resolves it to 0.
        Uncalibrated models pass the request through unchanged.
        """
        if self.cost_model is not None:
            resolve = getattr(self.cost_model, "kernel_block_size", None)
            if resolve is not None:
                return resolve(self.kernel_block_size)
        return self.kernel_block_size

    # -------------------------------------------------------------- fitting
    def fit(self, features, labels: np.ndarray) -> "IncrementalTrainer":
        """Train the initial model and run the offline provenance phase."""
        self.features = features
        self.labels = np.asarray(labels)
        self.objective = objective_for(
            self.task, self.regularization, self.n_classes
        )
        n_samples = features.shape[0]
        self.schedule = make_schedule(
            n_samples,
            self.batch_size,
            self.n_iterations,
            seed=self.seed,
            kind=self.schedule_kind,
        )
        dense = not is_sparse(features)
        n_params = self.objective.n_parameters(features.shape[1])
        use_opt = self._resolve_opt(dense, n_params)

        interpolator = None
        freeze_at = None
        if self.task != "linear":
            interpolator = sigmoid_complement_interpolator(
                n_intervals=self.interpolation_intervals
            )
            if use_opt and dense:
                freeze_at = self.freeze_fraction
        self.result, self.store = train_with_capture(
            self.objective,
            features,
            self.labels,
            self.schedule,
            self.learning_rate,
            epsilon=self.epsilon,
            interpolator=interpolator,
            freeze_at=freeze_at,
            max_dense_params=self.max_dense_params,
        )
        # Offline construction of every updater (part of provenance phase).
        # The compiled ReplayPlan builds the packed occurrence index once;
        # the reference PrIUUpdater and the opt updaters all share it
        # through the store.
        self._priu = PrIUUpdater(self.store, features, self.labels)
        self._plan = ReplayPlan(
            self.store,
            features,
            self.labels,
            cache_sparse_blocks=self.plan_cache_sparse_blocks,
            kernel_block_size=self._plan_block_size(),
        )
        self._build_opt()
        self._closed_form = None
        self._influence = None
        self._fitted = True
        return self

    def _build_opt(self) -> None:
        """(Re)construct the PrIU-opt updaters for the current store/data."""
        dense = not is_sparse(self.features)
        n_params = self.objective.n_parameters(self.features.shape[1])
        self._opt = None
        if self._resolve_opt(dense, n_params) and dense:
            if self.task == "linear":
                self._opt = PrIUOptLinearUpdater(
                    self.features,
                    self.labels,
                    self.n_iterations,
                    self.learning_rate,
                    self.regularization,
                    eigen_correction_limit=self.eigen_correction_limit,
                )
            elif self.store.frozen is not None and (
                self.store.frozen.eigenvectors is not None
            ):
                self._opt = PrIUOptLogisticUpdater(
                    self.store,
                    self.features,
                    self.labels,
                    plan=self._plan,
                    eigen_correction_limit=self.eigen_correction_limit,
                )

    def _resolve_opt(self, dense: bool, n_params: int) -> bool:
        if self.method == "priu":
            return False
        if self.method == "priu-opt":
            return True
        return dense and n_params <= self.opt_feature_limit

    def _require_fit(self) -> None:
        if not self._fitted:
            raise RuntimeError("call fit() before requesting updates")

    def prepare_baselines(self, influence_mode: str = "koh-liang") -> None:
        """Build the baselines' offline state (Hessian, (M,N) views) up front.

        Both INFL's Hessian and Closed-form's materialized views depend only
        on the training data, not on the removal set, so benchmarks construct
        them here rather than inside the first timed update.
        """
        self._require_fit()
        if self.task == "linear" and self._closed_form is None:
            self._closed_form = IncrementalClosedForm(
                self.features, self.labels, self.regularization
            )
        if self._influence is None:
            n_params = self.objective.n_parameters(self.features.shape[1])
            if not is_sparse(self.features) and n_params <= self.opt_feature_limit:
                self._influence = InfluenceFunctionUpdater(
                    self.objective,
                    self.features,
                    self.labels,
                    self.result.weights,
                    mode=influence_mode,
                )

    # --------------------------------------------------------- checkpointing
    def save_checkpoint(
        self, directory: str | Path, include_plan: bool = True
    ) -> dict[str, Path]:
        """Persist the serving state: provenance store + compiled plan.

        Writes ``store.npz`` (:func:`~repro.core.serialization.save_store`)
        and, when the compiled plan supports this configuration,
        ``plan.npz`` (:func:`~repro.core.serialization.save_plan`) with the
        fitted model's final weights embedded.  The training data itself is
        *not* saved — PrIU needs the original features/labels to form the
        removed samples' delta corrections, so the caller hands them back
        to :meth:`from_checkpoint`.

        The write is crash-atomic as a *pair*: both archives are staged
        as ``*.new`` (each itself written temp → fsync → rename) and then
        flipped into place through a journaled commit
        (:func:`~repro.core.serialization.commit_checkpoint`).  A crash
        at any point leaves the complete old checkpoint or the complete
        new one — never a new store next to an old plan.
        """
        self._require_fit()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        # Settle any earlier interrupted save so its strays cannot be
        # confused with this one's staging files.
        recover_checkpoint(directory)
        members = [STORE_FILENAME]
        save_store(self.store, staged_path(directory, STORE_FILENAME))
        paths = {"store": directory / STORE_FILENAME}
        if include_plan and self._plan.supported:
            save_plan(
                self._plan,
                staged_path(directory, PLAN_FILENAME),
                weights=self.result.weights,
            )
            members.append(PLAN_FILENAME)
            paths["plan"] = directory / PLAN_FILENAME
        commit_checkpoint(directory, members)
        return paths

    @classmethod
    def from_checkpoint(
        cls,
        path: str | Path,
        features,
        labels: np.ndarray,
        plan_path: str | Path | None = None,
        method: str = "auto",
        mmap: bool = True,
        plan_cache_sparse_blocks: bool = True,
        plan_cache=None,
        **overrides,
    ) -> "IncrementalTrainer":
        """Rebuild a serving-ready trainer from a checkpoint — no recapture.

        ``path`` is either the directory written by :meth:`save_checkpoint`
        (containing ``store.npz`` and optionally ``plan.npz``) or the store
        archive itself, with ``plan_path`` naming the plan archive.  A fresh
        process goes checkpoint → compiled plan → first answered request:
        every hyperparameter is recovered from the store's metadata, the
        plan arrays are memory-mapped where possible (``mmap=True``), and
        the deterministic batch schedule is taken verbatim from the store,
        so the reconstructed trainer answers removal queries identically to
        the one that called :meth:`fit`.

        When no plan archive exists the plan is compiled from the reloaded
        store (still far cheaper than re-running capture).  When the plan
        archive does not embed final weights, ``weights_`` is recovered by
        replaying the empty removal set — the provenance recursion with
        ``R = ∅`` reproduces the captured training trajectory exactly.

        ``plan_cache`` (a :class:`~repro.core.serialization.PlanCache`)
        makes repeated loads of the same plan epoch share one read-only
        mapping — the shard-worker path, where every reload and warm
        standby must cost zero extra resident plan bytes.
        """
        path = Path(path)
        if path.is_dir():
            # A crash may have interrupted the last save here: roll a
            # journaled commit forward / sweep pre-commit strays first.
            recover_checkpoint(path)
            store_path = path / STORE_FILENAME
            if plan_path is None:
                candidate = path / PLAN_FILENAME
                plan_path = candidate if candidate.exists() else None
        else:
            store_path = path
        store = load_store(store_path)
        n_classes = (
            store.n_classes
            if store.task == "multinomial_logistic"
            else None
        )
        trainer = cls(
            task=store.task,
            learning_rate=store.learning_rate,
            regularization=store.regularization,
            batch_size=store.schedule.batch_size,
            n_iterations=len(store.records),
            n_classes=n_classes,
            method=method,
            seed=store.schedule.seed,
            epsilon=store.epsilon,
            schedule_kind=store.schedule.kind,
            plan_cache_sparse_blocks=plan_cache_sparse_blocks,
            **overrides,
        )
        trainer._restore(
            store, features, labels, plan_path, mmap, plan_cache=plan_cache
        )
        return trainer

    def _restore(
        self,
        store,
        features,
        labels: np.ndarray,
        plan_path,
        mmap: bool,
        plan_cache=None,
    ) -> None:
        """Attach checkpointed state; mirrors everything :meth:`fit` sets."""
        labels = np.asarray(labels)
        if (
            store.n_original_samples is not None
            and features.shape[0] == store.n_original_samples
            and store.n_original_samples != store.n_samples
        ):
            # The checkpoint was committed: the caller hands back the
            # *original* training data and the recorded deletion log picks
            # out the current survivors.
            survivors = store.survivor_original_ids()
            features = features[survivors]
            labels = labels[survivors]
        if features.shape[0] != store.n_samples:
            expected = (
                f"{store.n_samples}"
                if store.n_original_samples is None
                else f"{store.n_samples} (current) or "
                f"{store.n_original_samples} (original, pre-commit)"
            )
            raise ValueError(
                f"checkpoint was captured over {expected} samples, "
                f"got features with {features.shape[0]} rows"
            )
        self.features = features
        self.labels = labels
        self.objective = objective_for(
            self.task, self.regularization, self.n_classes
        )
        self.schedule = store.schedule
        self.store = store
        self._priu = PrIUUpdater(store, features, labels)
        if plan_path is not None:
            self._plan = load_plan(
                plan_path,
                store,
                features,
                labels,
                mmap=mmap,
                cache_sparse_blocks=self.plan_cache_sparse_blocks,
                plan_cache=plan_cache,
                kernel_block_size=self._plan_block_size(),
            )
        else:
            self._plan = ReplayPlan(
                store,
                features,
                labels,
                cache_sparse_blocks=self.plan_cache_sparse_blocks,
                kernel_block_size=self._plan_block_size(),
            )
        self._build_opt()
        weights = getattr(self._plan, "final_weights", None)
        if weights is None:
            empty = np.empty(0, dtype=np.int64)
            weights = (
                self._plan.run_single(empty)
                if self._plan.supported
                else self._priu.update(empty)
            )
        self.result = TrainingResult(
            weights=np.asarray(weights, dtype=float),
            objective=self.objective,
            schedule=self.schedule,
            learning_rate=self.learning_rate,
            regularization=self.regularization,
            n_iterations=self.n_iterations,
            wall_time=0.0,
        )
        self._closed_form = None
        self._influence = None
        self._fitted = True

    # -------------------------------------------------------------- queries
    @property
    def weights_(self) -> np.ndarray:
        """Parameters of the initial (full-data) model."""
        self._require_fit()
        return self.result.weights

    @property
    def n_samples(self) -> int:
        """Current training-set size (shrinks with every commit)."""
        self._require_fit()
        return int(self.store.n_samples)

    @property
    def deletion_log(self) -> np.ndarray:
        """Committed removals so far, in *original* id space, commit order."""
        self._require_fit()
        if self.store.deletion_log is None:
            return np.empty(0, dtype=np.int64)
        return self.store.deletion_log.copy()

    @property
    def commit_receipts(self) -> tuple:
        """Audit receipts of every commit, in commit order (GDPR evidence).

        Each :class:`~repro.core.provenance_store.CommitReceipt` records
        the batch's original-space ids (a slice of :attr:`deletion_log`),
        the pre-commit store version and sample counts, and a timestamp
        from the trainer's injected clock.  Receipts persist through
        checkpoints (store format v3), so the evidence trail survives
        process restarts.
        """
        self._require_fit()
        return tuple(self.store.commit_receipts)

    # ----------------------------------------------------------- maintenance
    def maintenance_cost(self, include_bytes: bool = True) -> MaintenanceCost:
        """Snapshot the reclaimable garbage commits left behind.

        Threads the accounting through every layer that accumulates it:
        the compiled plan's multinomial slot-map garbage, the store's SVD
        correction-column widths, and the deferred PrIU-opt eigen
        refreshes (frozen logistic state and/or the linear updater).

        ``include_bytes=False`` skips the ``O(records)``
        store/plan byte traversal and reports the counters only — what a
        per-batch scheduler check (:class:`~repro.serving.fleet.\
FleetServer` auto-maintenance) needs, since
        :meth:`~repro.core.maintenance.MaintenancePolicy.due` never reads
        the byte fields.
        """
        self._require_fit()
        plan = self._plan
        garbage, physical = (
            plan.slot_garbage_rows() if plan.supported else (0, 0)
        )
        columns = self.store.svd_correction_columns
        if columns is None:
            total = worst = widened = 0
        else:
            total = int(columns.sum())
            worst = int(columns.max()) if columns.size else 0
            widened = int((columns > 0).sum())
        stale = 0
        if self._opt is not None and getattr(self._opt, "eigen_stale", False):
            stale += 1
        frozen = self.store.frozen
        if frozen is not None and frozen.eigen_stale and (
            not isinstance(self._opt, PrIUOptLogisticUpdater)
        ):
            # Frozen state can be stale even when no opt updater is built
            # (e.g. a method="priu" trainer restored from an opt capture).
            stale += 1
        return MaintenanceCost(
            slot_garbage_rows=garbage,
            slot_physical_rows=physical,
            svd_correction_columns=total,
            svd_max_correction_columns=worst,
            svd_widened_summaries=widened,
            stale_eigen=stale,
            plan_nbytes=self.plan_nbytes() if include_bytes else 0,
            store_nbytes=self.store.nbytes() if include_bytes else 0,
        )

    def maintain(
        self, policy: MaintenancePolicy | None = None
    ) -> MaintenanceReport:
        """Reclaim the state growth commits leave behind (see
        :mod:`repro.core.maintenance`).

        Runs whichever maintenance tasks ``policy`` marks due for the
        current :meth:`maintenance_cost` — the default policy's zero
        thresholds treat *any* garbage as due, so a bare ``maintain()``
        reclaims everything:

        * **svd** — ε-re-truncates the summaries commits widened
          (``policy.svd_epsilon=None`` keeps answers to machine
          precision) and re-syncs the compiled plan's summary references;
        * **repack** — folds the multinomial slot map into the plan flats
          (bit-identical answers, freed bytes in the receipt);
        * **eigen** — discharges deferred PrIU-opt eigendecompositions
          (incremental correction below ``policy.eigen_correction_limit``
          rows, exact recompute otherwise).

        Safe to interleave with queries and commits at any batch
        boundary; the serving fleet schedules it on idle models behind
        the lowest-priority ``maintenance`` lane.  Returns a
        :class:`~repro.core.maintenance.MaintenanceReport` receipt.
        """
        self._require_fit()
        if policy is None:
            policy = MaintenancePolicy()
        cost_before = self.maintenance_cost()
        due = policy.due(cost_before)
        start = time.perf_counter()
        svd_receipt = repack_receipt = eigen_receipt = None
        performed: list[str] = []
        if "svd" in due:
            svd_receipt = self.store.retruncate_summaries(
                epsilon=policy.svd_epsilon,
                incremental=policy.svd_incremental,
            )
            touched = svd_receipt.pop("iterations")
            self._plan.resync_summaries(touched)
            performed.append("svd")
        if "repack" in due and self._plan.supported:
            repack_receipt = self._plan.repack()
            performed.append("repack")
        if "eigen" in due:
            refreshed: dict[str, str] = {}
            limit = policy.eigen_correction_limit
            if self._opt is not None and hasattr(self._opt, "refresh_eigen"):
                mode = self._opt.refresh_eigen(correction_limit=limit)
                if mode is not None:
                    refreshed["opt"] = mode
            frozen = self.store.frozen
            if frozen is not None and frozen.eigen_stale:
                mode = refresh_frozen_eigen(frozen, correction_limit=limit)
                if mode is not None:
                    refreshed["frozen"] = mode
            eigen_receipt = {"refreshed": refreshed}
            performed.append("eigen")
        seconds = time.perf_counter() - start
        return MaintenanceReport(
            performed=tuple(performed),
            cost_before=cost_before,
            cost_after=self.maintenance_cost(),
            svd=svd_receipt,
            repack=repack_receipt,
            eigen=eigen_receipt,
            seconds=seconds,
        )

    def remove(
        self, indices, method: str | None = None, commit: bool = False
    ) -> UpdateOutcome:
        """Incremental update: the model with ``indices`` deleted.

        ``method="priu"`` serves the request through the compiled
        :class:`~repro.core.replay_plan.ReplayPlan`; ``"priu-seq"`` forces
        the uncompiled per-record reference path (kept for verification and
        benchmarking).  ``commit=True`` additionally adopts the answer as
        the new baseline (see :meth:`commit`).
        """
        self._require_fit()
        removed = normalize_removed_indices(indices)
        chosen = method or ("priu-opt" if self._opt is not None else "priu")
        kernel_before = self._kernel_snapshot()
        start = time.perf_counter()
        if chosen == "priu-opt":
            if self._opt is None:
                raise ValueError("PrIU-opt is unavailable for this configuration")
            weights = self._opt.update(removed, assume_unique=True)
        elif chosen == "priu":
            if self._plan.supported:
                weights = self._plan.run_single(removed, assume_unique=True)
            else:
                weights = self._priu.update(removed, assume_unique=True)
        elif chosen == "priu-seq":
            weights = self._priu.update(removed, assume_unique=True)
        else:
            raise ValueError(f"unknown update method: {chosen}")
        seconds = time.perf_counter() - start
        self._observe_replay(chosen, kernel_before, seconds)
        outcome = UpdateOutcome(
            weights, chosen, seconds, removed, self.store._version
        )
        if commit:
            self.commit(outcome)
        return outcome

    def remove_many(
        self, index_sets, method: str | None = None, commit: bool = False
    ) -> list[UpdateOutcome]:
        """Serve K deletion requests simultaneously (one per index set).

        The K replays share every per-iteration bulk term: the weight
        vectors stack into an ``m × K`` matrix so each cached summary is
        applied as a single GEMM, and (for PrIU-opt) the eigen tail runs as
        one broadcast recursion.  Returns one :class:`UpdateOutcome` per
        set — numerically identical (≲1e-12) to sequential :meth:`remove`
        calls — with the amortized wall-clock share attributed to each.

        ``method`` takes the same values as :meth:`remove` (class
        docstring); ``"priu-seq"`` deliberately runs the K requests
        one-by-one through the uncompiled reference path, making it the
        sequential baseline the batched speedup is measured against.
        Callers who receive requests one at a time rather than K in hand
        should sit a :class:`repro.serving.DeletionServer` in front of
        this method instead of calling it directly.

        ``commit=True`` switches to *committed* semantics: the K sets are
        applied cumulatively in list order (request ``k`` is replayed with
        the union of sets ``0..k``, so every caller's answer excludes both
        their own samples and everything admitted before them), and the
        final union becomes the new baseline via :meth:`commit`.  Each
        returned outcome still reports its own request's ``removed`` set.
        """
        self._require_fit()
        normalized = [normalize_removed_indices(s) for s in index_sets]
        if not normalized:
            return []
        replay_sets = normalized
        if commit:
            prefixes: list[np.ndarray] = []
            acc = np.empty(0, dtype=np.int64)
            for removed in normalized:
                acc = np.union1d(acc, removed)
                prefixes.append(acc)
            replay_sets = prefixes
        chosen = method or ("priu-opt" if self._opt is not None else "priu")
        version = self.store._version
        kernel_before = self._kernel_snapshot()
        start = time.perf_counter()
        if chosen == "priu-opt":
            if self._opt is None:
                raise ValueError("PrIU-opt is unavailable for this configuration")
            stacked = self._opt.update_many(replay_sets, assume_unique=True)
        elif chosen == "priu":
            if self._plan.supported:
                stacked = self._plan.run(replay_sets, assume_unique=True)
            else:
                stacked = np.stack(
                    [
                        self._priu.update(r, assume_unique=True)
                        for r in replay_sets
                    ],
                    axis=1,
                )
        elif chosen == "priu-seq":
            stacked = np.stack(
                [self._priu.update(r, assume_unique=True) for r in replay_sets],
                axis=1,
            )
        else:
            raise ValueError(f"unknown update method: {chosen}")
        seconds = time.perf_counter() - start
        self._observe_replay(chosen, kernel_before, seconds)
        share = seconds / len(normalized)
        outcomes = [
            UpdateOutcome(
                np.ascontiguousarray(stacked[:, k]), chosen, share, removed,
                version,
            )
            for k, removed in enumerate(normalized)
        ]
        if commit:
            self._apply_commit(replay_sets[-1], stacked[:, -1])
        return outcomes

    def _kernel_snapshot(self) -> dict | None:
        """Pre-dispatch copy of the plan's fused/scalar tallies (or None)."""
        if self.cost_model is None or not self._plan.supported:
            return None
        return dict(self._plan._kernel_stats)

    def _observe_replay(
        self, chosen: str, before: dict | None, seconds: float
    ) -> None:
        """Feed one plan replay's fused/scalar split to the cost model.

        Only ``method="priu"`` dispatches run entirely through the
        compiled plan, so only those timings attribute cleanly to the
        kernel tallies; opt/seq paths interleave other work and would
        poison the per-iteration calibration.
        """
        if before is None or chosen != "priu":
            return
        observe = getattr(self.cost_model, "observe_replay", None)
        if observe is None:
            return
        after = self._plan._kernel_stats
        observe(
            fused_iterations=after["fused_iterations"]
            - before["fused_iterations"],
            scalar_iterations=after["scalar_iterations"]
            - before["scalar_iterations"],
            seconds=seconds,
        )

    # --------------------------------------------------------------- commit
    def commit(self, outcome: UpdateOutcome) -> dict:
        """Adopt a previously computed update as the new baseline.

        Where :meth:`remove` answers the counterfactual and leaves every
        piece of state describing the original training set, ``commit``
        makes the deletion permanent: the provenance store is compacted
        (occurrence rows dropped, surviving ids remapped onto
        ``[0, n - Δn)``), the compiled :class:`ReplayPlan` is incrementally
        refreshed (or recompiled past ``plan_refresh_threshold``), the
        held features/labels are sliced to the survivors, the PrIU /
        PrIU-opt updaters are rebuilt over the compacted state, and
        ``outcome.weights`` becomes :attr:`weights_`.

        After a commit, *fresh* removal queries and removal ids are
        expressed in the new, packed id space; :attr:`deletion_log` keeps
        the cumulative original-space ids so checkpoints can be restored
        from the original training data.  Replaying the committed trainer
        with set ``T`` matches replaying the pre-commit trainer with
        ``committed ∪ T`` to reduction-order noise (property-tested at
        atol 1e-10).

        Raises ``ValueError`` for outcomes computed before an earlier
        commit (their removal ids point into a stale id space).  Returns a
        receipt dict: ``mode`` (``refresh`` | ``recompile`` | ``noop`` |
        ``unsupported``), the fraction of iterations touched, and
        ``removed`` (how many samples left the store).
        """
        self._require_fit()
        if outcome.store_version is not None and (
            outcome.store_version != self.store._version
        ):
            raise ValueError(
                "stale outcome: it was computed before an earlier commit "
                "re-packed the id space; re-run the query and commit that"
            )
        return self._apply_commit(outcome.removed, outcome.weights)

    def _apply_commit(self, removed: np.ndarray, weights: np.ndarray) -> dict:
        removed = normalize_removed_indices(removed)
        weights = np.ascontiguousarray(np.asarray(weights, dtype=float))
        if removed.size == 0:
            self.result.weights = weights
            return {"mode": "noop", "fraction": 0.0, "removed": 0}
        # Cost-model hook: estimate before the store mutates, decide the
        # refresh-vs-recompile threshold from the calibrated crossing
        # point, then feed the timed receipt back (predicted-vs-actual).
        # Refresh and recompile produce identical plan state, so the
        # threshold source can never change an answer — only its cost.
        estimate = None
        threshold = self.plan_refresh_threshold
        if self.cost_model is not None:
            estimate = self.cost_model.estimate(self, removed)
            threshold = self.cost_model.refresh_threshold()
        stats = self.store.compact(
            removed, self.features, self.labels, timestamp=self._now()
        )
        survivors = np.delete(
            np.arange(stats.n_samples_before, dtype=np.int64), removed
        )
        self.features = self.features[survivors]
        self.labels = self.labels[survivors]
        self.schedule = self.store.schedule
        sync_start = time.perf_counter()
        receipt = self._plan.refresh(
            stats,
            self.features,
            self.labels,
            recompile_threshold=threshold,
        )
        receipt["plan_sync_seconds"] = time.perf_counter() - sync_start
        self._priu = PrIUUpdater(self.store, self.features, self.labels)
        if isinstance(self._opt, PrIUOptLinearUpdater):
            # Downdate M/N by the removed rows (the updater still holds the
            # pre-commit data) instead of recomputing the O(n·m²) gram.
            self._opt.compact(removed, self.features, self.labels)
        else:
            # Logistic opt state lives in store.frozen: compact() already
            # downdated gram/moment exactly and flagged the eigen state
            # stale (the first opt update or maintain() discharges it);
            # rebuilding the wrapper is cheap.
            self._build_opt()
        self._closed_form = None
        self._influence = None
        self.result = TrainingResult(
            weights=weights,
            objective=self.objective,
            schedule=self.schedule,
            learning_rate=self.learning_rate,
            regularization=self.regularization,
            n_iterations=self.n_iterations,
            wall_time=0.0,
        )
        receipt["removed"] = int(removed.size)
        if self.cost_model is not None:
            self.cost_model.observe_commit(estimate, receipt)
        return receipt

    # -------------------------------------------------------------- costing
    def estimate_removal(self, indices) -> "CostEstimate":
        """Predict what removing ``indices`` would cost — without replaying.

        Reads the removal's footprint off the packed occurrence index (two
        ``searchsorted`` range counts, no replay) and prices it with the
        attached :class:`~repro.core.costmodel.CostModel`.  With no model
        attached, a throwaway uncalibrated model whose crossing point is
        this trainer's ``plan_refresh_threshold`` is used, so the
        predicted ``mode`` always matches what a commit would actually
        do.  ``indices`` live in the current (post-commit) id space, like
        :meth:`remove`.
        """
        self._require_fit()
        model = self.cost_model
        if model is None:
            model = CostModel(
                Calibration(
                    recompile_seconds=max(self.plan_refresh_threshold, 1e-9)
                )
            )
        return model.estimate(self, indices)

    def retrain(self, indices) -> UpdateOutcome:
        """BaseL: retrain from scratch on the same schedule minus ``indices``."""
        self._require_fit()
        removed = normalize_removed_indices(indices)
        start = time.perf_counter()
        result = train(
            self.objective,
            self.features,
            self.labels,
            self.schedule,
            self.learning_rate,
            exclude=frozenset(removed.tolist()),
        )
        seconds = time.perf_counter() - start
        return UpdateOutcome(
            result.weights, "basel", seconds, removed, self.store._version
        )

    def closed_form(self, indices) -> UpdateOutcome:
        """Closed-form incremental baseline (linear regression only)."""
        self._require_fit()
        if self.task != "linear":
            raise ValueError("closed-form updates exist only for linear regression")
        if self._closed_form is None:
            self._closed_form = IncrementalClosedForm(
                self.features, self.labels, self.regularization
            )
        removed = normalize_removed_indices(indices)
        start = time.perf_counter()
        weights = self._closed_form.delete(removed)
        seconds = time.perf_counter() - start
        return UpdateOutcome(
            weights, "closed-form", seconds, removed, self.store._version
        )

    def influence(self, indices, mode: str = "koh-liang") -> UpdateOutcome:
        """INFL: the influence-function baseline."""
        self._require_fit()
        if self._influence is None or self._influence.mode != mode:
            self._influence = InfluenceFunctionUpdater(
                self.objective,
                self.features,
                self.labels,
                self.result.weights,
                mode=mode,
            )
        removed = normalize_removed_indices(indices)
        start = time.perf_counter()
        weights = self._influence.update(removed)
        seconds = time.perf_counter() - start
        return UpdateOutcome(
            weights, f"infl-{mode}", seconds, removed, self.store._version
        )

    # ----------------------------------------------------------- evaluation
    def evaluate(self, features, labels, weights: np.ndarray | None = None) -> float:
        """Task metric on held-out data: MSE (linear) or accuracy (logistic)."""
        self._require_fit()
        w = self.weights_ if weights is None else weights
        return self.objective.metric(w, features, np.asarray(labels))

    def provenance_gigabytes(self) -> float:
        """Memory held by the provenance store (Table 3)."""
        self._require_fit()
        return self.store.gigabytes()

    def plan_nbytes(self) -> int:
        """Bytes held by the compiled replay plan (0 if unsupported).

        This is the serving-resident footprint a
        :class:`~repro.serving.fleet.ModelRegistry` charges a loaded model
        against its memory cap — the store and training data are either
        memory-mapped or owned by the caller.
        """
        self._require_fit()
        return int(self._plan.nbytes()) if self._plan.supported else 0
