"""Evaluation substrate: metrics, model comparison, timing, memory.

Key entry points: :func:`compare_updated_models` (Table 4 rows),
:func:`accuracy`/:func:`l2_distance`/:func:`cosine_similarity` (Sec. 6.2
metrics), :func:`measure`/:class:`Timing` (benchmark wall-clock),
:func:`summarize_latencies`/:class:`LatencySummary` (serving latency
distributions), and :func:`memory_report` (Table 3 accounting).
"""

from .comparison import ModelComparison, compare_updated_models, format_table
from .memory import MemoryReport, data_bytes, memory_report, pss_bytes, rss_bytes
from .metrics import (
    MagnitudeChange,
    accuracy,
    cosine_similarity,
    l2_distance,
    magnitude_change,
    mse,
    sign_flips,
)
from .timing import (
    LatencySummary,
    Stopwatch,
    Timing,
    measure,
    percentile,
    summarize_latencies,
)

__all__ = [
    "LatencySummary",
    "MagnitudeChange",
    "MemoryReport",
    "ModelComparison",
    "Stopwatch",
    "Timing",
    "accuracy",
    "compare_updated_models",
    "cosine_similarity",
    "data_bytes",
    "format_table",
    "l2_distance",
    "magnitude_change",
    "measure",
    "memory_report",
    "pss_bytes",
    "rss_bytes",
    "mse",
    "percentile",
    "sign_flips",
    "summarize_latencies",
]
