"""Evaluation substrate: metrics, model comparison, timing, memory."""

from .comparison import ModelComparison, compare_updated_models, format_table
from .memory import MemoryReport, data_bytes, memory_report
from .metrics import (
    MagnitudeChange,
    accuracy,
    cosine_similarity,
    l2_distance,
    magnitude_change,
    mse,
    sign_flips,
)
from .timing import Stopwatch, Timing, measure

__all__ = [
    "MagnitudeChange",
    "MemoryReport",
    "ModelComparison",
    "Stopwatch",
    "Timing",
    "accuracy",
    "compare_updated_models",
    "cosine_similarity",
    "data_bytes",
    "format_table",
    "l2_distance",
    "magnitude_change",
    "measure",
    "memory_report",
    "mse",
    "sign_flips",
]
