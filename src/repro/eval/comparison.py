"""Structured model comparison: the rows of Table 4 and the Q4 analysis."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import (
    MagnitudeChange,
    cosine_similarity,
    l2_distance,
    magnitude_change,
    sign_flips,
)


@dataclass
class ModelComparison:
    """How close a candidate updated model is to the reference (BaseL)."""

    name: str
    reference_metric: float
    candidate_metric: float
    distance: float
    similarity: float
    sign_flips: int
    magnitude: MagnitudeChange

    def row(self) -> dict:
        """A flat dict suitable for table printing."""
        return {
            "method": self.name,
            "metric": self.candidate_metric,
            "reference_metric": self.reference_metric,
            "distance": self.distance,
            "similarity": self.similarity,
            "sign_flips": self.sign_flips,
            "max_rel_magnitude": self.magnitude.max_relative,
        }


def compare_updated_models(
    name: str,
    objective,
    reference_weights: np.ndarray,
    candidate_weights: np.ndarray,
    valid_features,
    valid_labels: np.ndarray,
) -> ModelComparison:
    """Compare ``candidate`` against the retrained reference model.

    ``objective.metric`` provides the task-appropriate validation number
    (MSE for linear — lower is better; accuracy for logistic — higher is
    better), matching the paper's accuracy columns.
    """
    reference_metric = objective.metric(reference_weights, valid_features, valid_labels)
    candidate_metric = objective.metric(candidate_weights, valid_features, valid_labels)
    return ModelComparison(
        name=name,
        reference_metric=reference_metric,
        candidate_metric=candidate_metric,
        distance=l2_distance(reference_weights, candidate_weights),
        similarity=cosine_similarity(reference_weights, candidate_weights),
        sign_flips=sign_flips(reference_weights, candidate_weights),
        magnitude=magnitude_change(reference_weights, candidate_weights),
    )


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Minimal fixed-width table renderer for harness output."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    divider = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line))
        for line in rendered
    )
    return "\n".join([header, divider, body])


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)
