"""The paper's evaluation metrics (Sec. 6.2).

* *Accuracy*: validation MSE for linear regression, validation accuracy for
  (binary or multinomial) logistic regression.
* *Model comparison*: L2 distance and cosine similarity between parameter
  vectors, plus the fine-grained sign-flip / magnitude-change analysis the
  paper reports for Q4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def mse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error (linear-regression validation metric)."""
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    return float(np.mean((predictions - targets) ** 2))


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of matching hard labels."""
    return float(np.mean(np.asarray(predictions) == np.asarray(targets)))


def l2_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``‖a − b‖₂`` — the "distance" column of Table 4."""
    return float(np.linalg.norm(np.asarray(a, float) - np.asarray(b, float)))


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine of the angle between parameter vectors — Table 4 "similarity"."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0.0:
        return 1.0 if np.allclose(a, b) else 0.0
    return float(a @ b / denom)


def sign_flips(reference: np.ndarray, candidate: np.ndarray, atol: float = 1e-12) -> int:
    """How many coordinates changed sign (Q4's fine-grained analysis).

    Coordinates that are (numerically) zero in either vector don't count.
    """
    reference = np.asarray(reference, dtype=float).ravel()
    candidate = np.asarray(candidate, dtype=float).ravel()
    significant = (np.abs(reference) > atol) & (np.abs(candidate) > atol)
    return int(np.sum(np.sign(reference[significant]) != np.sign(candidate[significant])))


@dataclass
class MagnitudeChange:
    """Summary of per-coordinate relative magnitude changes."""

    max_relative: float
    mean_relative: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"max {self.max_relative:.3g}, mean {self.mean_relative:.3g}"


def magnitude_change(
    reference: np.ndarray, candidate: np.ndarray, atol: float = 1e-12
) -> MagnitudeChange:
    """Relative per-coordinate magnitude deviation of ``candidate``."""
    reference = np.asarray(reference, dtype=float).ravel()
    candidate = np.asarray(candidate, dtype=float).ravel()
    significant = np.abs(reference) > atol
    if not np.any(significant):
        return MagnitudeChange(0.0, 0.0)
    relative = np.abs(candidate[significant] - reference[significant]) / np.abs(
        reference[significant]
    )
    return MagnitudeChange(float(relative.max()), float(relative.mean()))
