"""Memory accounting for Table 3.

The paper reports resident memory of the whole process; we account the
*algorithmic* state instead — the training data each method must hold plus
method-specific caches (the provenance store for PrIU/PrIU-opt, the ``(M,N)``
views for Closed-form, the Hessian for INFL).  Ratios between methods are the
quantity Table 3's narrative depends on ("no more than 5× BaseL", "over 10×
for large parameter counts"), and those are preserved.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..linalg.matrix_utils import nbytes_of


@dataclass
class MemoryReport:
    """Bytes held by each method for one workload configuration."""

    dataset: str
    basel: int
    priu: int
    priu_opt: int | None

    def row(self) -> dict:
        gb = 1e9
        return {
            "dataset": self.dataset,
            "BaseL (GB)": self.basel / gb,
            "PrIU (GB)": self.priu / gb,
            "PrIU-opt (GB)": (self.priu_opt / gb) if self.priu_opt else float("nan"),
            "PrIU ratio": self.priu / max(1, self.basel),
        }


def data_bytes(features, labels: np.ndarray) -> int:
    """Bytes of the training data itself (held by every method)."""
    return nbytes_of(features) + int(np.asarray(labels).nbytes)


def rss_bytes(pid: int | None = None) -> int | None:
    """A process's resident set size in bytes, or None if unmeasurable.

    The probe behind ``benchmarks/bench_router.py``'s zero-copy claim:
    shard workers that memory-map the same read-only plan share physical
    pages, so the *marginal* RSS of each extra worker should be process
    overhead only, not another copy of the plan.  Reads
    ``/proc/<pid>/statm`` (Linux; resident pages × page size) and falls
    back to ``resource.getrusage`` for the current process elsewhere.
    """
    if pid is None:
        pid = os.getpid()
    try:
        fields = Path(f"/proc/{pid}/statm").read_text().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    if pid == os.getpid():
        try:
            import resource

            usage = resource.getrusage(resource.RUSAGE_SELF)
            # ru_maxrss is KiB on Linux, bytes on macOS.
            scale = 1 if sys.platform == "darwin" else 1024
            return int(usage.ru_maxrss) * scale
        except (ImportError, OSError, ValueError):
            pass
    return None


def pss_bytes(pid: int | None = None) -> int | None:
    """A process's proportional set size in bytes, or None if unmeasurable.

    RSS double-counts shared pages: a read-only plan mapped by four shard
    workers shows up in all four RSS numbers even though only one
    physical copy exists.  PSS charges each shared page ``1/n`` to each
    of its ``n`` mappers, so the *sum* of PSS across a worker fleet is
    the fleet's true physical footprint — the quantity the router
    benchmark's "extra processes are ~free" assertion is about.  Linux
    only (``/proc/<pid>/smaps_rollup``).
    """
    if pid is None:
        pid = os.getpid()
    try:
        for line in Path(f"/proc/{pid}/smaps_rollup").read_text().splitlines():
            if line.startswith("Pss:"):
                return int(line.split()[1]) * 1024
    except (OSError, IndexError, ValueError):
        pass
    return None


def memory_report(
    name: str,
    features,
    labels: np.ndarray,
    store,
    opt_state_bytes: int | None = None,
    plan_bytes: int = 0,
) -> MemoryReport:
    """Assemble a Table 3 row from a fitted trainer's components.

    ``plan_bytes`` is the compiled ReplayPlan's extra state — the layout the
    default serving path actually holds — so the PrIU columns reflect what
    the benchmarked configuration keeps resident, not just the raw store.
    """
    base = data_bytes(features, labels)
    priu = base + store.nbytes() + plan_bytes
    priu_opt = None
    if opt_state_bytes is not None:
        priu_opt = base + store.nbytes() + plan_bytes + opt_state_bytes
    return MemoryReport(dataset=name, basel=base, priu=priu, priu_opt=priu_opt)
