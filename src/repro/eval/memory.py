"""Memory accounting for Table 3.

The paper reports resident memory of the whole process; we account the
*algorithmic* state instead — the training data each method must hold plus
method-specific caches (the provenance store for PrIU/PrIU-opt, the ``(M,N)``
views for Closed-form, the Hessian for INFL).  Ratios between methods are the
quantity Table 3's narrative depends on ("no more than 5× BaseL", "over 10×
for large parameter counts"), and those are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.matrix_utils import nbytes_of


@dataclass
class MemoryReport:
    """Bytes held by each method for one workload configuration."""

    dataset: str
    basel: int
    priu: int
    priu_opt: int | None

    def row(self) -> dict:
        gb = 1e9
        return {
            "dataset": self.dataset,
            "BaseL (GB)": self.basel / gb,
            "PrIU (GB)": self.priu / gb,
            "PrIU-opt (GB)": (self.priu_opt / gb) if self.priu_opt else float("nan"),
            "PrIU ratio": self.priu / max(1, self.basel),
        }


def data_bytes(features, labels: np.ndarray) -> int:
    """Bytes of the training data itself (held by every method)."""
    return nbytes_of(features) + int(np.asarray(labels).nbytes)


def memory_report(
    name: str,
    features,
    labels: np.ndarray,
    store,
    opt_state_bytes: int | None = None,
    plan_bytes: int = 0,
) -> MemoryReport:
    """Assemble a Table 3 row from a fitted trainer's components.

    ``plan_bytes`` is the compiled ReplayPlan's extra state — the layout the
    default serving path actually holds — so the PrIU columns reflect what
    the benchmarked configuration keeps resident, not just the raw store.
    """
    base = data_bytes(features, labels)
    priu = base + store.nbytes() + plan_bytes
    priu_opt = None
    if opt_state_bytes is not None:
        priu_opt = base + store.nbytes() + plan_bytes + opt_state_bytes
    return MemoryReport(dataset=name, basel=base, priu=priu, priu_opt=priu_opt)
