"""Wall-clock measurement: benchmark timings and serving latency summaries.

Two families of helpers live here:

* :func:`measure` / :class:`Timing` / :class:`Stopwatch` — repeated
  best-of-N measurement of a callable, used by the benchmark harness
  (:mod:`repro.bench`) for every table and figure;
* :func:`summarize_latencies` / :class:`LatencySummary` /
  :func:`percentile` — order statistics over a batch of per-request
  latency samples, used by the deletion server (:mod:`repro.serving`) to
  surface queueing-wait and service-time distributions.

Everything is plain stdlib so the timing layer never perturbs what it
measures.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass


@dataclass
class Timing:
    """Repeated-measurement summary in seconds."""

    best: float
    mean: float
    runs: int

    def speedup_over(self, other: "Timing") -> float:
        """``other / self`` — how many times faster this timing is."""
        if self.best <= 0.0:
            return float("inf")
        return other.best / self.best


def measure(func: Callable[[], object], repeats: int = 3) -> Timing:
    """Best-of-``repeats`` wall time of a zero-argument callable."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return Timing(best=min(samples), mean=sum(samples) / len(samples), runs=repeats)


class Stopwatch:
    """Context manager capturing one elapsed interval."""

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


# ------------------------------------------------------------- latency stats
def _finite_sorted(samples: Iterable[float]) -> list[float]:
    """Float-coerce, validate and sort latency samples.

    NaN is rejected up front: Python's ``sorted()`` ordering is undefined
    in its presence (comparisons all return False), which silently turns
    p50/p95 into garbage rather than failing.  Infinities are rejected for
    the same reason — a latency sample of ``inf`` means the measurement is
    broken, not that the request was slow.
    """
    values = [float(s) for s in samples]
    for value in values:
        if not math.isfinite(value):
            raise ValueError(
                f"latency samples must be finite, got {value!r} "
                "(NaN breaks sorted-order statistics)"
            )
    values.sort()
    return values


def _quantile_of_sorted(values: list[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted, non-empty list."""
    position = q * (len(values) - 1)
    low = int(position)
    high = min(low + 1, len(values) - 1)
    fraction = position - low
    return values[low] * (1.0 - fraction) + values[high] * fraction


def percentile(samples: Iterable[float], q: float) -> float:
    """Linear-interpolated quantile ``q ∈ [0, 1]`` of ``samples``."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must lie in [0, 1]")
    values = _finite_sorted(samples)
    if not values:
        raise ValueError("percentile of an empty sample set")
    return _quantile_of_sorted(values, q)


@dataclass
class LatencySummary:
    """Order statistics over a batch of latency samples, in seconds."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    min: float
    max: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencySummary":
        values = _finite_sorted(samples)
        if not values:
            raise ValueError("at least one latency sample is required")
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=_quantile_of_sorted(values, 0.50),
            p95=_quantile_of_sorted(values, 0.95),
            p99=_quantile_of_sorted(values, 0.99),
            min=values[0],
            max=values[-1],
        )

    def as_dict(self) -> dict[str, float]:
        """JSON-serializable form (for benchmark artifacts)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.min,
            "max": self.max,
        }


def summarize_latencies(samples: Iterable[float]) -> LatencySummary | None:
    """Summary of ``samples``, or None for an empty batch (nothing served)."""
    values = list(samples)
    if not values:
        return None
    return LatencySummary.from_samples(values)
