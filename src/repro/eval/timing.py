"""Wall-clock measurement helpers for the benchmark harness."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass


@dataclass
class Timing:
    """Repeated-measurement summary in seconds."""

    best: float
    mean: float
    runs: int

    def speedup_over(self, other: "Timing") -> float:
        """``other / self`` — how many times faster this timing is."""
        if self.best <= 0.0:
            return float("inf")
        return other.best / self.best


def measure(func: Callable[[], object], repeats: int = 3) -> Timing:
    """Best-of-``repeats`` wall time of a zero-argument callable."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return Timing(best=min(samples), mean=sum(samples) / len(samples), runs=repeats)


class Stopwatch:
    """Context manager capturing one elapsed interval."""

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start
