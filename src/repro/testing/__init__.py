"""Test-support utilities shipped with the library.

Unlike ``tests/`` (which never installs), this package is importable from
anywhere — CI chaos jobs, downstream users' own suites — and carries the
fault-injection layer the crash-safety guarantees are proven against:

* :class:`~repro.testing.faults.FaultInjector` — scripted crashes/failures
  at the durability protocol's instrumented steps
  (:func:`repro.core.serialization.set_fault_hook`);
* :func:`~repro.testing.faults.corrupt_npz_member` — targeted bit rot for
  checksum-detection tests;
* :class:`~repro.testing.faults.FlakyLoader` — an injectable
  :class:`~repro.serving.fleet.ModelRegistry` loader that fails on
  command, driving the fleet's retry/quarantine machinery.
"""

from .faults import (
    FaultInjector,
    FlakyLoader,
    SimulatedCrash,
    corrupt_npz_member,
    record_fault_points,
)

__all__ = [
    "FaultInjector",
    "FlakyLoader",
    "SimulatedCrash",
    "corrupt_npz_member",
    "record_fault_points",
]
