"""Test-support utilities shipped with the library.

Unlike ``tests/`` (which never installs), this package is importable from
anywhere — CI chaos jobs, downstream users' own suites — and carries the
fault-injection layer the crash-safety guarantees are proven against:

* :class:`~repro.testing.faults.FaultInjector` — scripted crashes/failures
  at the durability protocol's instrumented steps
  (:func:`repro.core.serialization.set_fault_hook`);
* :func:`~repro.testing.faults.corrupt_npz_member` — targeted bit rot for
  checksum-detection tests;
* :class:`~repro.testing.faults.FlakyLoader` — an injectable
  :class:`~repro.serving.fleet.ModelRegistry` loader that fails on
  command, driving the fleet's retry/quarantine machinery;
* :mod:`~repro.testing.races` — instrumented locks with
  acquisition-order cycle detection (:class:`LockMonitor`,
  :class:`InstrumentedLock`) and the :class:`GuardedBy` descriptor whose
  debug mode asserts guarded serving state is only touched under its
  lock.
"""

from .faults import (
    FaultInjector,
    FlakyLoader,
    SimulatedCrash,
    corrupt_npz_member,
    record_fault_points,
)
from .races import (
    GuardedBy,
    InstrumentedLock,
    LockDisciplineError,
    LockMonitor,
    LockOrderError,
    assert_owned,
    debug_guards,
    set_debug,
)

__all__ = [
    "FaultInjector",
    "FlakyLoader",
    "GuardedBy",
    "InstrumentedLock",
    "LockDisciplineError",
    "LockMonitor",
    "LockOrderError",
    "SimulatedCrash",
    "assert_owned",
    "corrupt_npz_member",
    "debug_guards",
    "record_fault_points",
    "set_debug",
]
