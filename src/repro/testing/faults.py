"""Fault injection for the durability protocol and the serving fleet.

The serialization layer announces every step of its write protocol through
a process-global hook (:func:`repro.core.serialization.set_fault_hook`):
``store.temp-written``, ``plan.renamed``, ``commit.rename.store.npz``, and
so on.  :class:`FaultInjector` scripts what happens at those points —
raise, simulate a crash, or hard-kill the process — so tests can prove
that a checkpoint interrupted anywhere reloads to a bit-exact pre- or
post-write state.

Nothing here monkey-patches the filesystem; the injector only acts at the
protocol's own instrumented seams, which keeps injected histories honest:
every simulated crash corresponds to a real kill point between two
syscalls the production code actually issues.
"""

from __future__ import annotations

import os
import struct
import threading
import zipfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple

from ..core.serialization import set_fault_hook


class SimulatedCrash(BaseException):
    """Process death at an injected fault point.

    Deliberately a :class:`BaseException`: production ``except Exception``
    handlers must not be able to swallow a simulated crash, exactly as
    they could not intercept a real ``kill -9``.
    """


@dataclass
class _Rule:
    pattern: str
    action: str  # "fail" | "crash" | "exit"
    after: int  # trigger on the (after+1)-th matching event
    exc: Optional[BaseException] = None
    times: Optional[int] = None  # fire at most this many times (None = always)
    hits: int = 0
    fired: int = 0


@dataclass
class FaultInjector:
    """Scripted responses to durability-protocol fault points.

    Rules match event names with :func:`fnmatch.fnmatchcase` patterns and
    fire once their match count exceeds ``after`` (with ``times=n``, at
    most ``n`` times — e.g. fail only the first of several writes):

    * ``fail_at`` raises an ordinary exception (default ``OSError``) —
      the write fails but the process survives;
    * ``crash_at`` raises :class:`SimulatedCrash` — the in-process stand-in
      for power loss, used by same-process crash sweeps;
    * ``exit_at`` calls ``os._exit(42)`` — a true no-cleanup death, for
      subprocess-based tests.

    Every event seen while installed is recorded in :attr:`events`
    regardless of whether any rule fires.
    """

    rules: List[_Rule] = field(default_factory=list)
    events: List[Tuple[str, str]] = field(default_factory=list)

    def fail_at(
        self,
        pattern: str,
        *,
        after: int = 0,
        exc: Optional[BaseException] = None,
        times: Optional[int] = None,
    ) -> "FaultInjector":
        self.rules.append(_Rule(pattern, "fail", after, exc, times))
        return self

    def crash_at(self, pattern: str, *, after: int = 0) -> "FaultInjector":
        self.rules.append(_Rule(pattern, "crash", after))
        return self

    def crash_at_step(self, step: int) -> "FaultInjector":
        """Crash on the ``step``-th fault point (0-based), whatever it is."""
        return self.crash_at("*", after=step)

    def exit_at(self, pattern: str, *, after: int = 0) -> "FaultInjector":
        self.rules.append(_Rule(pattern, "exit", after))
        return self

    def __call__(self, event: str, path: object) -> None:
        self.events.append((event, str(path)))
        for rule in self.rules:
            if not fnmatchcase(event, rule.pattern):
                continue
            rule.hits += 1
            if rule.hits <= rule.after:
                continue
            if rule.times is not None and rule.fired >= rule.times:
                continue
            rule.fired += 1
            if rule.action == "exit":
                os._exit(42)
            if rule.action == "crash":
                raise SimulatedCrash(f"simulated crash at {event} ({path})")
            raise rule.exc if rule.exc is not None else OSError(
                f"injected I/O failure at {event} ({path})"
            )

    @contextmanager
    def installed(self) -> Iterator["FaultInjector"]:
        previous = set_fault_hook(self)
        try:
            yield self
        finally:
            set_fault_hook(previous)


def record_fault_points(operation: Callable[[], object]) -> List[str]:
    """Run ``operation`` under a rule-free injector; return the event names.

    Crash-sweep tests use this to enumerate every kill point an operation
    passes through, then re-run the operation once per point with a
    ``crash_at`` rule armed.
    """
    injector = FaultInjector()
    with injector.installed():
        operation()
    return [event for event, _path in injector.events]


def corrupt_npz_member(path: os.PathLike, member: str) -> None:
    """Flip one byte inside ``member``'s stored data in an npz archive.

    The flip lands near the end of the member's compressed payload — past
    the npy header, inside array bytes — without rewriting the archive, so
    zip metadata stays valid and only content checksums can catch it.
    """
    path = Path(path)
    name = member if member.endswith(".npy") else member + ".npy"
    with zipfile.ZipFile(path) as archive:
        info = archive.getinfo(name)
    with open(path, "r+b") as handle:
        # The central directory's header_offset points at the local file
        # header; parse its variable-length fields to find the data start.
        handle.seek(info.header_offset)
        header = handle.read(30)
        if header[:4] != b"PK\x03\x04":  # pragma: no cover - corrupt input
            raise ValueError(f"bad local file header for {name} in {path}")
        name_len, extra_len = struct.unpack("<HH", header[26:30])
        data_start = info.header_offset + 30 + name_len + extra_len
        size = info.compress_size
        if size < 16:  # pragma: no cover - members are always larger
            raise ValueError(f"member {name} too small to corrupt safely")
        target = data_start + size - 8
        handle.seek(target)
        byte = handle.read(1)
        handle.seek(target)
        handle.write(bytes([byte[0] ^ 0xFF]))


class FlakyLoader:
    """Injectable :class:`~repro.serving.fleet.ModelRegistry` loader.

    Delegates to the registry's default checkpoint loader but fails the
    next ``n`` loads of any model armed with :meth:`fail_next`.  Thread
    safe: fleet workers load concurrently.
    """

    def __init__(self, exc_factory: Optional[Callable[[str], BaseException]] = None):
        self._lock = threading.Lock()
        self._armed: dict[str, int] = {}  # guarded-by: _lock
        self._exc_factory = exc_factory or (
            lambda model_id: OSError(f"injected load failure for {model_id!r}")
        )
        self.loads = 0  # guarded-by: _lock
        self.failures = 0  # guarded-by: _lock

    def fail_next(self, model_id: str, n: int = 1) -> None:
        with self._lock:
            self._armed[model_id] = self._armed.get(model_id, 0) + n

    def pending(self, model_id: str) -> int:
        with self._lock:
            return self._armed.get(model_id, 0)

    def __call__(self, model_id: str, spec) -> object:
        with self._lock:
            self.loads += 1
            remaining = self._armed.get(model_id, 0)
            if remaining > 0:
                if remaining == 1:
                    del self._armed[model_id]
                else:
                    self._armed[model_id] = remaining - 1
                self.failures += 1
                exc = self._exc_factory(model_id)
            else:
                exc = None
        if exc is not None:
            raise exc
        from ..serving.fleet import _default_loader

        return _default_loader(model_id, spec)
