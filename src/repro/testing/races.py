"""Runtime race detection: instrumented locks and guarded-state asserts.

Static lock discipline (``repro.analysis`` rule R002) proves that
annotated attributes are only *lexically* touched inside ``with
self._lock`` blocks.  This module supplies the runtime half:

* :class:`InstrumentedLock` — a drop-in wrapper around
  :class:`threading.Lock`/:class:`threading.RLock` that tracks the owning
  thread and reports every *acquire-while-holding* pair to a
  :class:`LockMonitor`;
* :class:`LockMonitor` — accumulates the acquisition-order graph across
  threads and detects cycles, i.e. lock-order inversions that can
  deadlock under an unlucky interleaving even if the test run itself
  never hung.  ``capture()`` monkeypatches ``threading.Lock``/``RLock``
  during construction of the system under test so library code needs no
  edits to run instrumented;
* :class:`GuardedBy` — a descriptor form of the ``# guarded-by: _lock``
  annotation.  In debug mode (``REPRO_DEBUG_GUARDS=1`` or
  :func:`set_debug`) every access after the constructing write asserts
  the named lock is held; in production it is a plain attribute.

The detector is *post-hoc* in the lockdep style: it flags hazardous
orderings observed over a whole run rather than only actual deadlocks,
so a single seeded chaos run surfaces inversions that would need a
precise two-thread interleaving to hang for real.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "GuardedBy",
    "InstrumentedLock",
    "LockDisciplineError",
    "LockMonitor",
    "LockOrderError",
    "assert_owned",
    "debug_guards",
    "set_debug",
]

# Real factories, captured before any ``LockMonitor.capture`` patches the
# ``threading`` module, so instrumented wrappers never nest recursively.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_THIS_FILE = os.path.abspath(__file__)


class LockDisciplineError(AssertionError):
    """A guarded attribute was touched without its lock, or a lock was
    released by a thread that does not own it."""


class LockOrderError(AssertionError):
    """The acquisition-order graph contains a cycle (deadlock hazard)."""


# ---------------------------------------------------------------------------
# Debug-mode switch for GuardedBy checks


class _DebugState:
    __slots__ = ("enabled",)


_DEBUG = _DebugState()
_DEBUG.enabled = os.environ.get("REPRO_DEBUG_GUARDS", "") not in ("", "0")


def set_debug(enabled: bool) -> bool:
    """Toggle :class:`GuardedBy` ownership checks; returns previous state."""
    previous = _DEBUG.enabled
    _DEBUG.enabled = bool(enabled)
    return previous


@contextmanager
def debug_guards(enabled: bool = True):
    """Context manager enabling guarded-state checks for its extent."""
    previous = set_debug(enabled)
    try:
        yield
    finally:
        set_debug(previous)


def _lock_is_owned(lock: object) -> bool:
    """Best-effort 'does the current thread hold ``lock``' probe.

    InstrumentedLock and RLock/Condition know their owner; a plain
    ``threading.Lock`` carries none, so ``locked()`` is the closest
    available approximation (held by *someone*).
    """
    if isinstance(lock, InstrumentedLock):
        return lock.owned()
    is_owned = getattr(lock, "_is_owned", None)
    if callable(is_owned):
        return bool(is_owned())
    locked = getattr(lock, "locked", None)
    if callable(locked):
        return bool(locked())
    return False


def assert_owned(lock: object, name: str = "lock") -> None:
    """Raise :class:`LockDisciplineError` unless ``lock`` is held."""
    if not _lock_is_owned(lock):
        raise LockDisciplineError(f"{name} is not held by the current thread")


class GuardedBy:
    """Descriptor marking an attribute as guarded by a sibling lock.

    ``_history = GuardedBy("_lock")`` declares that ``self._history`` may
    only be accessed while ``self._lock`` is held.  The static analyzer
    (rule R002) reads the declaration lexically; at runtime the check is
    active only in debug mode.  The *first* write is exempt so plain
    ``self._history = []`` construction in ``__init__`` works unguarded.
    """

    def __init__(self, lock_name: str):
        self.lock_name = lock_name
        self.public_name = "<unbound>"
        self.slot = "<unbound>"

    def __set_name__(self, owner, name):
        self.public_name = name
        self.slot = "_guarded__" + name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        if _DEBUG.enabled and self.slot in obj.__dict__:
            self._check(obj, "read")
        try:
            return obj.__dict__[self.slot]
        except KeyError:
            raise AttributeError(
                f"{type(obj).__name__!r} object has no attribute "
                f"{self.public_name!r}"
            ) from None

    def __set__(self, obj, value):
        if _DEBUG.enabled and self.slot in obj.__dict__:
            self._check(obj, "write")
        obj.__dict__[self.slot] = value

    def _check(self, obj, action: str) -> None:
        lock = getattr(obj, self.lock_name, None)
        if lock is None:
            return
        if not _lock_is_owned(lock):
            raise LockDisciplineError(
                f"{type(obj).__name__}.{self.public_name} {action} without "
                f"holding {self.lock_name}"
            )


# ---------------------------------------------------------------------------
# Instrumented locks and the acquisition-order monitor


class _Edge:
    """One observed ordering ``a`` held → ``b`` acquired."""

    __slots__ = ("count", "thread", "stack")

    def __init__(self, thread: str, stack: str):
        self.count = 0
        self.thread = thread
        self.stack = stack


def _acquisition_site() -> str:
    """Trimmed stack of the acquire call, for first-edge provenance."""
    frames = traceback.extract_stack(limit=14)
    kept = [
        frame
        for frame in frames
        if os.path.abspath(frame.filename) != _THIS_FILE
    ]
    return "".join(traceback.format_list(kept[-6:]))


class InstrumentedLock:
    """Lock/RLock wrapper with owner tracking and order reporting.

    Duck-types the pieces :class:`threading.Condition` uses
    (``acquire``/``release``/``_is_owned``/``_release_save``/
    ``_acquire_restore``) so ``Condition(InstrumentedLock(...))`` — and
    the default ``Condition()`` under :meth:`LockMonitor.capture`, whose
    patched ``threading.RLock`` returns a reentrant wrapper — keeps full
    wait/notify semantics while every hand-off stays visible to the
    monitor.
    """

    def __init__(
        self,
        name: str = "lock",
        monitor: Optional["LockMonitor"] = None,
        *,
        reentrant: bool = False,
    ):
        self.name = name
        self._monitor = monitor if monitor is not None else DEFAULT_MONITOR
        self._reentrant = reentrant
        self._inner = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._owner: Optional[int] = None
        self._depth = 0
        self._monitor._register(self)

    def __repr__(self):  # pragma: no cover - debugging aid
        state = f"owner={self._owner}" if self._owner else "unlocked"
        return f"<InstrumentedLock {self.name!r} {state}>"

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._reentrant and self._owner == me:
            got = self._inner.acquire(blocking, timeout)
            if got:
                self._depth += 1
            return got
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._owner = me
            self._depth = 1
            self._monitor._acquired(self)
        return got

    def release(self) -> None:
        me = threading.get_ident()
        if self._owner != me:
            error = LockDisciplineError(
                f"{self.name} released by thread {me} but owned by "
                f"{self._owner}"
            )
            self._monitor._discipline(error)
            raise error
        self._depth -= 1
        if self._depth == 0:
            self._owner = None
            self._monitor._released(self)
        self._inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc_value, tb):
        self.release()

    def locked(self) -> bool:
        return self._owner is not None

    def owned(self) -> bool:
        return self._owner == threading.get_ident()

    def assert_owned(self) -> None:
        if not self.owned():
            raise LockDisciplineError(
                f"{self.name} is not held by the current thread"
            )

    # -- Condition interoperation ------------------------------------------

    def _is_owned(self) -> bool:
        return self.owned()

    def _release_save(self):
        """Fully release (even reentrant depth) for ``Condition.wait``."""
        depth = self._depth
        self._depth = 0
        self._owner = None
        self._monitor._released(self)
        if self._reentrant:
            inner_state = self._inner._release_save()
        else:
            inner_state = None
            self._inner.release()
        return depth, inner_state

    def _acquire_restore(self, saved) -> None:
        depth, inner_state = saved
        if self._reentrant:
            self._inner._acquire_restore(inner_state)
        else:
            self._inner.acquire()
        self._owner = threading.get_ident()
        self._depth = depth
        self._monitor._acquired(self)


class LockMonitor:
    """Accumulates lock acquisition order across threads; finds cycles.

    An edge ``A -> B`` is recorded whenever a thread acquires ``B`` while
    holding ``A``.  Any cycle in the resulting graph is a lock-order
    inversion: two threads following different edges of the cycle can
    each block on a lock the other holds.
    """

    def __init__(self):
        self._mu = _REAL_LOCK()
        self._tls = threading.local()
        self._locks: List[InstrumentedLock] = []
        self._edges: Dict[Tuple[int, int], _Edge] = {}
        self._by_id: Dict[int, InstrumentedLock] = {}
        self.discipline_errors: List[LockDisciplineError] = []

    # -- wiring used by InstrumentedLock -----------------------------------

    def _stack(self) -> List[InstrumentedLock]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def _register(self, lock: InstrumentedLock) -> None:
        with self._mu:
            self._locks.append(lock)
            self._by_id[id(lock)] = lock

    def _acquired(self, lock: InstrumentedLock) -> None:
        held = self._stack()
        if held:
            thread = threading.current_thread().name
            with self._mu:
                for prior in held:
                    if prior is lock:
                        continue
                    key = (id(prior), id(lock))
                    edge = self._edges.get(key)
                    if edge is None:
                        edge = _Edge(thread, _acquisition_site())
                        self._edges[key] = edge
                    edge.count += 1
        held.append(lock)

    def _released(self, lock: InstrumentedLock) -> None:
        held = self._stack()
        for index in range(len(held) - 1, -1, -1):
            if held[index] is lock:
                del held[index]
                return

    def _discipline(self, error: LockDisciplineError) -> None:
        with self._mu:
            self.discipline_errors.append(error)

    # -- construction-time instrumentation ---------------------------------

    @contextmanager
    def capture(self, match: Optional[Callable[[str], bool]] = None):
        """Patch ``threading.Lock``/``RLock`` so locks *constructed* inside
        this context by matching source files are instrumented.

        ``match`` filters on the constructing frame's filename; the
        default instruments only library code (paths containing a
        ``repro`` package directory), so stdlib machinery (queues,
        futures, semaphores built inside ``threading``) keeps real locks
        unless the object holding them was built by library code.
        Instrumented locks stay instrumented after the context exits —
        only *construction* is patched, so a server built under
        ``capture()`` then exercised afterwards keeps reporting.
        """
        if match is None:
            match = _default_match

        def make(reentrant: bool):
            def factory():
                site = _construction_site()
                if site is None or not match(site[0]):
                    return _REAL_RLOCK() if reentrant else _REAL_LOCK()
                filename, lineno = site
                name = f"{os.path.basename(filename)}:{lineno}"
                return InstrumentedLock(
                    name, monitor=self, reentrant=reentrant
                )

            return factory

        patched_lock, patched_rlock = make(False), make(True)
        previous_lock, previous_rlock = threading.Lock, threading.RLock
        threading.Lock = patched_lock
        threading.RLock = patched_rlock
        try:
            yield self
        finally:
            if threading.Lock is patched_lock:
                threading.Lock = previous_lock
            if threading.RLock is patched_rlock:
                threading.RLock = previous_rlock

    def label(self, obj: object, prefix: str) -> None:
        """Rename ``obj``'s instrumented locks to ``prefix.attr`` so graph
        reports read like code (``FleetServer._sched`` instead of
        ``fleet.py:1039``)."""
        for attr, value in vars(obj).items():
            target = value
            if isinstance(value, threading.Condition):
                target = value._lock
            if isinstance(target, InstrumentedLock):
                target.name = f"{prefix}.{attr}"

    # -- results -----------------------------------------------------------

    def edges(self) -> List[Tuple[str, str, int]]:
        with self._mu:
            return [
                (self._by_id[a].name, self._by_id[b].name, edge.count)
                for (a, b), edge in self._edges.items()
            ]

    def cycles(self) -> List[List[str]]:
        """Cycles in the order graph, each as a list of lock names."""
        with self._mu:
            adjacency: Dict[int, List[int]] = {}
            for a, b in self._edges:
                adjacency.setdefault(a, []).append(b)
                adjacency.setdefault(b, [])
            names = {node: self._by_id[node].name for node in adjacency}
        return [
            [names[node] for node in component]
            for component in _strongly_connected(adjacency)
            if len(component) > 1
        ]

    def report(self) -> dict:
        return {
            "locks": [lock.name for lock in self._locks],
            "edges": [
                {"from": a, "to": b, "count": count}
                for a, b, count in self.edges()
            ],
            "cycles": self.cycles(),
            "discipline_errors": [
                str(error) for error in self.discipline_errors
            ],
        }

    def assert_clean(self) -> None:
        """Raise :class:`LockOrderError` on any recorded hazard."""
        cycles = self.cycles()
        if cycles or self.discipline_errors:
            lines = ["lock hazards detected:"]
            for cycle in cycles:
                lines.append(
                    "  order inversion: " + " -> ".join(cycle + cycle[:1])
                )
                lines.extend(self._cycle_provenance(cycle))
            for error in self.discipline_errors:
                lines.append(f"  discipline: {error}")
            raise LockOrderError("\n".join(lines))

    def _cycle_provenance(self, cycle: List[str]) -> List[str]:
        member = set(cycle)
        lines = []
        with self._mu:
            for (a, b), edge in self._edges.items():
                name_a = self._by_id[a].name
                name_b = self._by_id[b].name
                if name_a in member and name_b in member:
                    lines.append(
                        f"    {name_a} -> {name_b} "
                        f"(x{edge.count}, thread {edge.thread}) first at:"
                    )
                    lines.extend(
                        "      " + text
                        for text in edge.stack.rstrip().splitlines()
                    )
        return lines


DEFAULT_MONITOR = LockMonitor()


def _default_match(filename: str) -> bool:
    normalized = filename.replace(os.sep, "/")
    return "/repro/" in normalized


def _construction_site() -> Optional[Tuple[str, int]]:
    """First frame below the patched factory that is user code."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = os.path.abspath(frame.f_code.co_filename)
        base = os.path.basename(filename)
        if filename != _THIS_FILE and base != "threading.py":
            return filename, frame.f_lineno
        frame = frame.f_back
    return None


def _strongly_connected(adjacency: Dict[int, List[int]]) -> List[List[int]]:
    """Iterative Tarjan SCC over an adjacency-list graph."""
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    components: List[List[int]] = []
    counter = [0]

    for root in adjacency:
        if root in index_of:
            continue
        work = [(root, iter(adjacency[root]))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, iter(adjacency[successor])))
                    advanced = True
                    break
                if on_stack.get(successor):
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components
