"""Quickstart: train once, delete a subset, compare against retraining.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import IncrementalTrainer
from repro.datasets import make_binary_classification
from repro.eval import cosine_similarity, l2_distance

def main() -> None:
    # 1. A binary classification dataset (labels in {-1, +1}).
    data = make_binary_classification(
        n_samples=5000, n_features=20, separation=1.2, seed=0
    )
    print(f"dataset: {data.n_samples} train / {data.valid_features.shape[0]} "
          f"validation samples, {data.n_features} features")

    # 2. Train the initial model; PrIU's provenance is captured during this
    #    fit (the offline phase).
    trainer = IncrementalTrainer(
        task="binary_logistic",
        learning_rate=0.1,
        regularization=0.01,
        batch_size=200,
        n_iterations=400,
        seed=0,
    )
    trainer.fit(data.features, data.labels)
    accuracy = trainer.evaluate(data.valid_features, data.valid_labels)
    print(f"initial model validation accuracy: {accuracy:.4f}")
    print(f"provenance store size: {trainer.provenance_gigabytes() * 1e3:.1f} MB")

    # 3. Decide some training samples must go (here: a random 1%).
    rng = np.random.default_rng(7)
    removed = rng.choice(data.n_samples, size=data.n_samples // 100, replace=False)

    # 4. Incrementally update (PrIU / PrIU-opt) vs retraining (BaseL).
    incremental = trainer.remove(removed)
    retrained = trainer.retrain(removed)
    print(f"\nremoved {removed.size} samples")
    print(f"  {incremental.method:10s} update time: {incremental.seconds:.4f}s")
    print(f"  {retrained.method:10s} update time: {retrained.seconds:.4f}s")
    print(f"  speedup: {retrained.seconds / incremental.seconds:.1f}x")

    # 5. The updated models are interchangeable.
    print(f"\n  L2 distance:       "
          f"{l2_distance(incremental.weights, retrained.weights):.2e}")
    print(f"  cosine similarity: "
          f"{cosine_similarity(incremental.weights, retrained.weights):.6f}")
    acc_inc = trainer.evaluate(
        data.valid_features, data.valid_labels, incremental.weights
    )
    acc_ret = trainer.evaluate(
        data.valid_features, data.valid_labels, retrained.weights
    )
    print(f"  validation accuracy: incremental {acc_inc:.4f} "
          f"vs retrained {acc_ret:.4f}")


if __name__ == "__main__":
    main()
