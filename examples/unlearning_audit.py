"""Machine-unlearning audit: certify a deletion with error-bound diagnostics.

A "right to be forgotten" request arrives for a group of users' training
samples. We delete them incrementally, then use the library's theorem-bound
diagnostics (Theorems 4-9) to report how far the incremental model can be
from honest retraining — and verify against an actual retrain.

Run:  python examples/unlearning_audit.py
"""

import numpy as np

from repro import IncrementalTrainer
from repro.core import convergence_check, error_report
from repro.datasets import make_binary_classification
from repro.eval import cosine_similarity, l2_distance


def main() -> None:
    data = make_binary_classification(
        n_samples=6000, n_features=16, separation=1.1, seed=31
    )
    trainer = IncrementalTrainer(
        task="binary_logistic",
        learning_rate=0.05,
        regularization=0.02,
        batch_size=150,
        n_iterations=400,
        seed=32,
    )

    # Pre-flight: does the learning rate satisfy Lemma 1's convergence
    # condition? (PrIU's guarantees assume it.)
    check = convergence_check(data.features, 0.02, 0.05)
    print(f"Lemma 1 check: eta={check['learning_rate']:.3f} vs safe bound "
          f"{check['safe_learning_rate']:.3f} -> "
          f"{'OK' if check['satisfies_lemma1'] else 'VIOLATED'}")

    trainer.fit(data.features, data.labels)

    # The forget-set: 2% of training samples.
    rng = np.random.default_rng(33)
    forget = rng.choice(data.n_samples, size=data.n_samples // 50, replace=False)

    outcome = trainer.remove(forget, method="priu")
    print(f"\ndeleted {forget.size} samples in {outcome.seconds:.4f}s (PrIU)")

    # The audit: bound ingredients from Theorems 4-9.
    report = error_report(trainer.store, data.features, forget)
    print("\nerror-bound ingredients (Theorems 4-9):")
    for name, value in report.dominant_terms().items():
        print(f"  {name:30s} {value:.3e}")

    # Ground truth: honest retraining on the same schedule.
    retrained = trainer.retrain(forget)
    distance = l2_distance(outcome.weights, retrained.weights)
    similarity = cosine_similarity(outcome.weights, retrained.weights)
    print(f"\nactual deviation from retraining: L2 {distance:.2e}, "
          f"cosine similarity {similarity:.8f}")
    acc_inc = trainer.evaluate(
        data.valid_features, data.valid_labels, outcome.weights
    )
    acc_ret = trainer.evaluate(
        data.valid_features, data.valid_labels, retrained.weights
    )
    print(f"validation accuracy: incremental {acc_inc:.4f} vs "
          f"retrained {acc_ret:.4f}")
    verdict = "PASS" if similarity > 0.999 and abs(acc_inc - acc_ret) < 0.01 else "REVIEW"
    print(f"\naudit verdict: {verdict}")


if __name__ == "__main__":
    main()
