"""Multi-model deletion serving: a registry of checkpoints behind one fleet.

The deployment shape a real GDPR pipeline has: several independently
trained models, each with its own saved checkpoint, fronted by a single
:class:`repro.FleetServer`.  Requests name a model and an SLA lane —
``deadline`` traffic pre-empts batching entirely, ``bulk`` clean-up rides
the coalescing budget — and a shared bounded worker pool serves
everything, loading checkpoints lazily and evicting compiled plans LRU
under a memory cap.

1. *Training processes* — fit three models (two logistic regions, one
   linear) with provenance capture, persist each (`save_checkpoint`).
2. *Serving process* — register the checkpoints in a
   :class:`repro.ModelRegistry` (cheap metadata validation, no loading),
   stand up a :class:`repro.FleetServer`, and drive mixed-lane traffic.

Run:  python examples/fleet_server.py            # full-size demo
      python examples/fleet_server.py --smoke    # tiny sizes (CI)
"""

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    AdmissionPolicy,
    FleetServer,
    IncrementalTrainer,
    ModelRegistry,
)
from repro.datasets import make_binary_classification, make_regression


def train_and_checkpoint(root: Path, smoke: bool):
    """Three 'regions', trained and checkpointed independently."""
    n, iters = (600, 50) if smoke else (6000, 300)
    datasets = {
        "emea": make_binary_classification(n, 16, separation=1.1, seed=1),
        "apac": make_binary_classification(
            int(n * 0.8), 12, separation=1.3, seed=2
        ),
        "telemetry": make_regression(int(n * 0.6), 10, noise=0.05, seed=3),
    }
    checkpoints = {}
    for model_id, data in datasets.items():
        trainer = IncrementalTrainer(
            task=data.task,
            learning_rate=0.1 if data.task != "linear" else 0.05,
            regularization=0.01,
            batch_size=max(20, data.features.shape[0] // 30),
            n_iterations=iters,
            seed=0,
        )
        trainer.fit(data.features, data.labels)
        directory = root / model_id
        trainer.save_checkpoint(directory)
        checkpoints[model_id] = (directory, data)
        print(f"  {model_id:10s} checkpointed -> {directory}")
    return checkpoints


def main(smoke: bool = False) -> None:
    n_requests = 24 if smoke else 96
    root = Path(tempfile.mkdtemp(prefix="priu-fleet-"))

    print("training the fleet")
    checkpoints = train_and_checkpoint(root, smoke)

    # ------------------------------------------------- serving process
    registry = ModelRegistry(max_resident=2)  # smaller than the fleet!
    for model_id, (directory, data) in checkpoints.items():
        metadata = registry.register(
            model_id,
            checkpoint=directory,
            features=data.features,
            labels=data.labels,
        )
        print(
            f"  registered {model_id:10s} "
            f"({metadata.task}, n={metadata.n_samples})"
        )

    policy = AdmissionPolicy(
        max_batch=8, max_delay_seconds=0.02, max_pending=256
    )
    rng = np.random.default_rng(7)
    model_ids = list(checkpoints)
    with FleetServer(registry, policy, n_workers=2) as fleet:
        futures = []
        for i in range(n_requests):
            model_id = model_ids[int(rng.integers(len(model_ids)))]
            n = checkpoints[model_id][1].features.shape[0]
            ids = np.sort(
                rng.choice(n, size=max(1, n // 150), replace=False)
            )
            # Every sixth request is a GDPR-style deadline request.
            lane = "deadline" if i % 6 == 0 else "bulk"
            futures.append(
                (model_id, lane, fleet.submit(model_id, ids, lane=lane))
            )
            if i % 5 == 4:
                time.sleep(policy.max_delay_seconds / 3)  # bursty arrivals
        outcomes = [
            (model_id, lane, f.result(timeout=120))
            for model_id, lane, f in futures
        ]

        # ------------------------------------------------------ results
        print(f"\nanswered {len(outcomes)} requests across {len(model_ids)} models")
        for model_id in model_ids:
            stats = fleet.stats(model_id)
            print(
                f"  {model_id:10s} answered={stats.answered:3d} "
                f"batches={stats.batches:3d} "
                f"mean batch={stats.mean_batch_size:4.1f}"
            )
        fleet_stats = fleet.stats()
        for lane_name in ("deadline", "bulk"):
            lane = fleet_stats.lane(lane_name)
            if lane.latency is None:
                continue
            print(
                f"  lane {lane_name:9s} p50={lane.latency.p50 * 1e3:7.2f} ms "
                f"p99={lane.latency.p99 * 1e3:7.2f} ms "
                f"({lane.answered} served)"
            )
        print(f"\nregistry: {registry.stats()}")

    # Spot-check one answer against direct (unbatched) serving.
    model_id, _, outcome = outcomes[0]
    directory, data = checkpoints[model_id]
    direct = IncrementalTrainer.from_checkpoint(
        directory, data.features, data.labels
    ).remove(outcome.removed)
    print(
        f"first request ({model_id}): |w_fleet - w_direct| = "
        f"{np.max(np.abs(outcome.weights - direct.weights)):.2e}"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    main(parser.parse_args().smoke)
