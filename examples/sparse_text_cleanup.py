"""Sparse high-dimensional data: the RCV1 regime (paper Sec. 5.3).

Bag-of-words text classifiers have tens of thousands of features and sparse
rows.  PrIU's SVD caching would destroy sparsity, so the sparse path replays
the *linearized* update rule (Eq. 11) directly with the cached interpolation
coefficients — the paper reports only a ~10% gain here, and this example
reproduces that honest negative-ish result alongside the accuracy guarantee.

Run:  python examples/sparse_text_cleanup.py
"""

import numpy as np

from repro import IncrementalTrainer
from repro.datasets import inject_dirty, make_sparse_binary_classification
from repro.eval import cosine_similarity


def main() -> None:
    data = make_sparse_binary_classification(
        n_samples=9000, n_features=6000, density=0.002, seed=21
    )
    nnz = data.features.nnz
    print(f"sparse dataset: {data.n_samples} samples x "
          f"{data.n_features} features, {nnz} non-zeros "
          f"(density {nnz / (data.n_samples * data.n_features):.4f})")

    # Mislabelled documents sneak into the corpus.
    dirty = inject_dirty(data.features, data.labels, deletion_rate=0.02, seed=22)
    trainer = IncrementalTrainer(
        task="binary_logistic",
        learning_rate=0.01,
        regularization=0.1,
        batch_size=300,
        n_iterations=300,
        seed=23,
    )
    trainer.fit(dirty.features, dirty.labels)
    print(f"store mode: {trainer.store.compression} "
          f"(coefficient-only caching, features stay sparse)")

    removed = dirty.dirty_indices
    incremental = trainer.remove(removed)  # sparse PrIU (Eq. 11 replay)
    retrained = trainer.retrain(removed)

    speedup = retrained.seconds / incremental.seconds
    print(f"\nupdate time: PrIU {incremental.seconds:.3f}s vs "
          f"BaseL {retrained.seconds:.3f}s -> {speedup:.2f}x")
    print("(the paper reports only ~10% gain for sparse data — the win is "
          "skipping the exp(), not the data pass)")

    similarity = cosine_similarity(incremental.weights, retrained.weights)
    acc_inc = trainer.evaluate(
        data.valid_features, data.valid_labels, incremental.weights
    )
    acc_ret = trainer.evaluate(
        data.valid_features, data.valid_labels, retrained.weights
    )
    print(f"\ncosine similarity to retrained model: {similarity:.6f}")
    print(f"validation accuracy: PrIU {acc_inc:.4f} vs BaseL {acc_ret:.4f}")


if __name__ == "__main__":
    main()
