"""Data cleaning pipeline (paper Sec. 1 / Sec. 6.2, first experiment set).

A fraction of the training samples is corrupted (rescaled features, flipped
labels).  The analyst trains on the dirty data, an error-detection step
identifies the bad rows, and PrIU removes them from the model *without
retraining* — then we check the cleaned model against full retraining and
against the influence-function estimate (INFL).

Run:  python examples/data_cleaning.py
"""

import numpy as np

from repro import IncrementalTrainer
from repro.datasets import inject_dirty, make_binary_classification
from repro.eval import compare_updated_models, format_table


def main() -> None:
    # Ground-truth clean data (held out for honest validation).
    clean = make_binary_classification(
        n_samples=8000, n_features=24, separation=1.3, seed=1
    )

    # Corrupt 10% of the training samples — the "deletion rate" of Sec. 6.
    dirty = inject_dirty(clean.features, clean.labels, deletion_rate=0.10, seed=2)
    print(f"corrupted {dirty.dirty_indices.size} of "
          f"{clean.n_samples} training samples")

    # Train the initial model Minit over the dirty data; provenance is
    # captured during this (offline) phase.
    trainer = IncrementalTrainer(
        task="binary_logistic",
        learning_rate=0.1,
        regularization=0.01,
        batch_size=200,
        n_iterations=500,
        seed=3,
    )
    trainer.fit(dirty.features, dirty.labels)
    dirty_accuracy = trainer.evaluate(clean.valid_features, clean.valid_labels)
    print(f"model trained on dirty data: validation accuracy "
          f"{dirty_accuracy:.4f}")

    # The cleaning step hands us the ids of the dirty rows; remove them.
    outcomes = {
        "PrIU": trainer.remove(dirty.dirty_indices, method="priu"),
        "BaseL (retrain)": trainer.retrain(dirty.dirty_indices),
        "INFL": trainer.influence(dirty.dirty_indices),
    }
    reference = outcomes["BaseL (retrain)"]

    rows = []
    for name, outcome in outcomes.items():
        comparison = compare_updated_models(
            name, trainer.objective, reference.weights, outcome.weights,
            clean.valid_features, clean.valid_labels,
        )
        row = comparison.row()
        row["update_seconds"] = outcome.seconds
        rows.append(row)
    print()
    print(format_table(
        rows,
        ["method", "metric", "distance", "similarity", "update_seconds"],
    ))
    print(f"\n(dirty-model accuracy was {dirty_accuracy:.4f}; the cleaned "
          f"models should beat it)")


if __name__ == "__main__":
    main()
