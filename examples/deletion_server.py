"""Deletion serving end-to-end: capture -> checkpoint -> serve from a queue.

The PrIU workflow split across its two processes:

1. *Training process* — fit with provenance capture, then persist the
   store and the compiled replay plan (`save_checkpoint`).
2. *Serving process* — rebuild the trainer from the checkpoint
   (`from_checkpoint`: no recapture, plan arrays memory-mapped), stand up
   a `DeletionServer`, and answer single deletion requests that the
   server coalesces into batched replays behind the scenes.

Run:  python examples/deletion_server.py            # full-size demo
      python examples/deletion_server.py --smoke    # tiny sizes (CI)
"""

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import AdmissionPolicy, DeletionServer, IncrementalTrainer
from repro.datasets import make_binary_classification


def main(smoke: bool = False) -> None:
    n_samples, n_iterations, n_requests = (
        (800, 60, 8) if smoke else (8000, 400, 32)
    )

    # ---------------------------------------------- 1. training process
    data = make_binary_classification(
        n_samples=n_samples, n_features=20, separation=1.2, seed=0
    )
    trainer = IncrementalTrainer(
        task="binary_logistic",
        learning_rate=0.1,
        regularization=0.01,
        batch_size=max(20, n_samples // 40),
        n_iterations=n_iterations,
        seed=0,
    )
    trainer.fit(data.features, data.labels)
    checkpoint = Path(tempfile.mkdtemp(prefix="priu-checkpoint-"))
    paths = trainer.save_checkpoint(checkpoint)
    print(f"checkpoint written to {checkpoint}")
    for kind, path in paths.items():
        print(f"  {kind}: {path.name} ({path.stat().st_size / 1e3:.0f} kB)")

    # ----------------------------------------------- 2. serving process
    # (Same interpreter here for the demo; tests/core/test_plan_serialization.py
    # proves the answers are identical from a genuinely fresh process.)
    server_trainer = IncrementalTrainer.from_checkpoint(
        checkpoint, data.features, data.labels
    )
    print(
        "\nserving trainer rebuilt from checkpoint "
        f"(weights restored: {np.array_equal(server_trainer.weights_, trainer.weights_)})"
    )

    policy = AdmissionPolicy(
        max_batch=16, max_delay_seconds=0.01, max_pending=256
    )
    rng = np.random.default_rng(7)
    train_n = data.features.shape[0]
    requests = [
        np.sort(rng.choice(train_n, size=max(1, train_n // 200), replace=False))
        for _ in range(n_requests)
    ]

    with DeletionServer(server_trainer, policy, method="priu") as server:
        futures = []
        for i, removed in enumerate(requests):
            futures.append(server.submit(removed))
            if i % 4 == 3:  # a bursty arrival pattern, not a single batch
                time.sleep(policy.max_delay_seconds / 2)
        outcomes = [f.result(timeout=120) for f in futures]

    # ------------------------------------------------------- 3. results
    batch_sizes = sorted({o.batch_size for o in outcomes})
    print(f"\nanswered {len(outcomes)} deletion requests")
    print(f"  coalesced batch sizes seen: {batch_sizes}")
    sample = outcomes[0]
    reference = server_trainer.remove(requests[0], method="priu")
    print(
        "  first request: |w_served - w_direct| = "
        f"{np.max(np.abs(sample.weights - reference.weights)):.2e}"
    )

    stats = server.stats()
    print("\nserver stats")
    print(f"  batches dispatched : {stats.batches}")
    print(f"  mean batch size    : {stats.mean_batch_size:.1f}")
    print(f"  wait    p50 / p95  : {stats.wait.p50 * 1e3:7.2f} / {stats.wait.p95 * 1e3:7.2f} ms")
    print(f"  service p50 / p95  : {stats.service.p50 * 1e3:7.2f} / {stats.service.p95 * 1e3:7.2f} ms")
    print(f"  latency p50 / p95  : {stats.latency.p50 * 1e3:7.2f} / {stats.latency.p95 * 1e3:7.2f} ms")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke runs"
    )
    main(parser.parse_args().smoke)
