"""Interpretability by repeated subset deletion (paper Sec. 1 and Sec. 6.2).

Which *group* of training samples is responsible for the model's behaviour?
The data-driven approach deletes candidate subsets and measures how much the
model moves — which requires many retrainings, exactly the workload PrIU
accelerates: provenance is collected once, then every subset removal is an
incremental update.

Here we rank feature-defined cohorts of a multiclass dataset by their
influence on the model parameters.

Run:  python examples/interpretability.py
"""

import time

import numpy as np

from repro import IncrementalTrainer
from repro.datasets import make_multiclass_classification
from repro.eval import format_table, l2_distance


def main() -> None:
    data = make_multiclass_classification(
        n_samples=6000, n_features=30, n_classes=5, separation=1.4, seed=11
    )
    trainer = IncrementalTrainer(
        task="multinomial_logistic",
        n_classes=5,
        learning_rate=0.05,
        regularization=0.01,
        batch_size=600,
        n_iterations=300,
        seed=12,
    )
    print("training initial model (provenance capture happens here)...")
    trainer.fit(data.features, data.labels)
    base_accuracy = trainer.evaluate(data.valid_features, data.valid_labels)
    print(f"initial validation accuracy: {base_accuracy:.4f}")

    # Candidate cohorts: per class, the 1% of samples the model is most
    # confident about, plus random control groups.
    probs = trainer.objective.probabilities(trainer.weights_, data.features)
    cohort_size = data.n_samples // 100
    cohorts = {}
    for klass in range(5):
        members = np.where(data.labels == klass)[0]
        confident = members[np.argsort(-probs[members, klass])][:cohort_size]
        cohorts[f"class {klass} (confident)"] = confident
    rng = np.random.default_rng(13)
    for i in range(2):
        cohorts[f"random control {i}"] = rng.choice(
            data.n_samples, size=cohort_size, replace=False
        )

    # One incremental update per cohort — no retraining anywhere.
    rows = []
    total_update_time = 0.0
    for name, cohort in cohorts.items():
        outcome = trainer.remove(cohort, method="priu")
        total_update_time += outcome.seconds
        rows.append(
            {
                "cohort": name,
                "parameter_shift": l2_distance(outcome.weights, trainer.weights_),
                "validation_accuracy": trainer.evaluate(
                    data.valid_features, data.valid_labels, outcome.weights
                ),
                "update_seconds": outcome.seconds,
            }
        )
    rows.sort(key=lambda row: -row["parameter_shift"])
    print()
    print(format_table(rows))

    # What would the same exploration have cost with retraining?
    start = time.perf_counter()
    trainer.retrain(cohorts["random control 0"])
    one_retrain = time.perf_counter() - start
    print(f"\n{len(cohorts)} incremental updates took "
          f"{total_update_time:.2f}s total; ONE retraining takes "
          f"{one_retrain:.2f}s ({len(cohorts)} would take "
          f"~{one_retrain * len(cohorts):.1f}s)")


if __name__ == "__main__":
    main()
