#!/usr/bin/env python
"""Run the project lint pass (``repro.analysis``) from a checkout.

Thin wrapper so CI and developers don't need ``PYTHONPATH`` set::

    python tools/lint.py                  # scan src/ + tests/
    python tools/lint.py --json report.json
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.__main__ import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(["--root", str(ROOT), *sys.argv[1:]]))
