#!/usr/bin/env python3
"""Fail on broken intra-repo links in README.md and docs/.

Scans markdown inline links (``[text](target)``) and bare reference
definitions (``[label]: target``).  External targets (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``) are ignored; every other
target is resolved relative to the file containing it (or the repo root
for absolute ``/``-style paths) and must exist on disk.

Usage::

    python tools/check_docs_links.py            # README.md + docs/**/*.md
    python tools/check_docs_links.py FILE...    # explicit file list
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# [text](target) — skipping images' leading "!" is unnecessary: the capture
# only needs the target. Nested parens are not used in our docs.
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def strip_code(text: str) -> str:
    """Drop fenced and inline code spans so example snippets never count."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def targets_in(path: Path) -> list[str]:
    text = strip_code(path.read_text(encoding="utf-8"))
    found = INLINE_LINK.findall(text) + REFERENCE_DEF.findall(text)
    return [t for t in found if t]


def check_file(path: Path) -> list[str]:
    errors = []
    try:
        label = str(path.relative_to(REPO_ROOT))
    except ValueError:
        label = str(path)
    for target in targets_in(path):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        candidate = target.split("#", 1)[0]
        if not candidate:
            continue
        if candidate.startswith("/"):
            resolved = REPO_ROOT / candidate.lstrip("/")
        else:
            resolved = path.parent / candidate
        if not resolved.exists():
            errors.append(f"{label}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(a).resolve() for a in argv]
    else:
        files = [REPO_ROOT / "README.md"]
        files += sorted((REPO_ROOT / "docs").rglob("*.md"))
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"no such file: {f}", file=sys.stderr)
        return 2
    errors = [error for f in files for error in check_file(f)]
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(files)
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"ok: {checked} file(s), no broken intra-repo links")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
