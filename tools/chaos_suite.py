#!/usr/bin/env python
"""Seeded chaos suite: randomized fleet traffic under injected faults.

CI entry point for the fault-injection harness.  Each seed drives the
real :class:`~repro.serving.FleetServer` through a few hundred random
operations — submits across lanes, commits, cancels, clock advances and
*chaos ops* (evict a checkpoint-backed model, arm injected load
failures) — on the test suite's :class:`FakeClock`, so every retry
backoff and quarantine probe interval elapses in zero wall time.  After
the run the serving invariants are checked (pending conservation,
quarantine accounting, per-lane stats) and every successfully answered
request is compared bit-for-bit against direct single-model serving.

Prints one ``PASS``/``FAIL`` line per seed and exits nonzero if any
seed fails, carrying the seed and the full operation trace so the
failure replays exactly::

    python tools/chaos_suite.py             # default seed set
    python tools/chaos_suite.py --seeds 11,23 --ops 400
"""

import argparse
import sys
import tempfile
import time
import traceback
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "tests" / "serving"))

import numpy as np  # noqa: E402

from harness import FakeClock, StressDriver  # noqa: E402
from repro.testing.races import LockMonitor, debug_guards  # noqa: E402
from repro import (  # noqa: E402
    AdmissionPolicy,
    CostModel,
    FleetServer,
    IncrementalTrainer,
    ModelRegistry,
)
from repro.datasets import (  # noqa: E402
    make_binary_classification,
    make_regression,
)
from repro.serving import RetryPolicy, ShardUnavailableError  # noqa: E402
from repro import ShardRouter  # noqa: E402
from repro.testing import FlakyLoader  # noqa: E402

DEFAULT_SEEDS = (11, 23, 37, 41, 53, 61, 79, 97)
# Seeds that additionally run the cost-model op mix: the chaos model gets
# a CostModel attached, the driver rolls `cost` ops, and the op's retire
# branch exercises cost-driven eviction while load faults are armed.
COST_SEEDS = (127, 139)
# Seeds that chaos the cross-process tier instead: random traffic over a
# real ShardRouter while shards are SIGKILLed and restarted mid-batch.
# Every answered request must match direct serving; every failed one
# must carry the typed ShardUnavailableError (a kill's blast radius is
# its own shard's in-flight futures, nothing else).  These run real
# subprocesses, so the fake clock and the lock instrumentation (both
# in-process tools) do not apply.
ROUTER_SEEDS = (151, 163)

_BINARY = make_binary_classification(400, 10, separation=1.0, seed=21)
_BINARY_B = make_binary_classification(320, 8, separation=1.2, seed=22)
_LINEAR = make_regression(360, 6, noise=0.05, seed=23)


def fit_model(kind):
    """Deterministic fits: two calls with the same kind are bit-identical."""
    if kind == "binary":
        trainer = IncrementalTrainer(
            "binary_logistic",
            learning_rate=0.1,
            regularization=0.01,
            batch_size=40,
            n_iterations=50,
            seed=0,
            method="priu",
        )
        trainer.fit(_BINARY.features, _BINARY.labels)
    elif kind == "binary-b":
        trainer = IncrementalTrainer(
            "binary_logistic",
            learning_rate=0.08,
            regularization=0.02,
            batch_size=32,
            n_iterations=45,
            seed=2,
            method="priu",
        )
        trainer.fit(_BINARY_B.features, _BINARY_B.labels)
    elif kind == "linear":
        trainer = IncrementalTrainer(
            "linear",
            learning_rate=0.05,
            regularization=0.01,
            batch_size=36,
            n_iterations=40,
            seed=1,
            method="priu",
        )
        trainer.fit(_LINEAR.features, _LINEAR.labels)
    else:
        raise ValueError(kind)
    return trainer


def run_seed(seed, n_ops, checkpoint, cost=False, instrument=False):
    """One chaos run; returns a short per-seed stats summary string.

    With ``instrument=True`` the whole run executes under the race
    detector: every lock the serving stack constructs is wrapped in an
    :class:`~repro.testing.races.InstrumentedLock` (acquisition-order
    cycle detection, invariant I6) and ``GuardedBy`` debug asserts are
    live, at unchanged op distribution — seeded traces replay exactly.
    """
    if instrument:
        monitor = LockMonitor()
        with monitor.capture(), debug_guards():
            summary = _run_seed(seed, n_ops, checkpoint, cost, monitor)
        locks = len(monitor.report()["locks"])
        edges = len(monitor.edges())
        return f"{summary} locks={locks} order_edges={edges}"
    return _run_seed(seed, n_ops, checkpoint, cost, None)


def _run_seed(seed, n_ops, checkpoint, cost, monitor):
    flaky = FlakyLoader()
    registry = ModelRegistry(loader=flaky)
    extra = {"cost_model": CostModel()} if cost else {}
    registry.register(
        "chaos-bin",
        checkpoint=checkpoint,
        features=_BINARY.features,
        labels=_BINARY.labels,
        **extra,
    )
    live = {
        "stress-lin": fit_model("linear"),
        "stress-commit": fit_model("binary-b"),
    }
    for model_id, trainer in live.items():
        registry.register(model_id, trainer=trainer)
    clock = FakeClock()
    fleet = FleetServer(
        registry,
        AdmissionPolicy(max_batch=4, max_delay_seconds=0.02, max_pending=8),
        method="priu",
        n_workers=2,
        clock=clock,
        retry=RetryPolicy(
            load_attempts=2,
            backoff_seconds=0.01,
            quarantine_after=2,
            probe_interval_seconds=0.5,
        ),
        autostart=False,
    )
    fleet.configure_model("stress-commit", commit_mode=True)
    if monitor is not None:
        monitor.label(registry, "ModelRegistry")
        monitor.label(fleet, "FleetServer")
    fleet.start()
    driver = StressDriver(
        fleet,
        model_ids=["chaos-bin", "stress-lin", "stress-commit"],
        n_samples={
            "chaos-bin": _BINARY.features.shape[0],
            "stress-lin": live["stress-lin"].n_samples,
            "stress-commit": live["stress-commit"].n_samples,
        },
        commit_models={"stress-commit"},
        lanes=("bulk", "deadline"),
        seed=seed,
        clock=clock,
        flaky=flaky,
        chaos_models={"chaos-bin"},
        cost_models={"chaos-bin"} if cost else (),
        monitor=monitor,
    )
    report = driver.run(n_ops=n_ops)  # closes the fleet + checks invariants

    if report.load_faults == 0:
        raise AssertionError(
            f"seed {seed}: no load faults armed — chaos op never rolled"
        )
    if cost and report.cost_estimates == 0:
        raise AssertionError(
            f"seed {seed}: cost op never produced an estimate"
        )
    if cost and report.retired == 0:
        raise AssertionError(
            f"seed {seed}: cost-driven retire never fired"
        )
    for model_id in live:
        failed = fleet.stats(model_id).failed
        if failed:
            raise AssertionError(
                f"seed {seed}: injected faults leaked onto healthy model "
                f"{model_id!r} ({failed} failed)"
            )

    reference = {
        "chaos-bin": fit_model("binary"),
        "stress-lin": live["stress-lin"],
    }
    checked = 0
    for submitted in report.served():
        if submitted.model_id == "stress-commit":
            continue
        outcome = submitted.future.result()
        expected = reference[submitted.model_id].remove(
            submitted.ids, method="priu"
        )
        np.testing.assert_allclose(
            outcome.weights, expected.weights, atol=1e-10, rtol=0.0,
            err_msg=f"seed {seed}: {submitted.model_id} {submitted.ids}",
        )
        checked += 1

    stats = fleet.stats()
    summary = (
        f"answered={stats.answered} failed={stats.failed} "
        f"quarantined={stats.quarantined} load_faults={report.load_faults} "
        f"fired={flaky.failures} verified={checked}"
    )
    if cost:
        summary += (
            f" cost_estimates={report.cost_estimates}"
            f" retired={report.retired}"
        )
    return summary


def run_router_seed(seed, n_ops, checkpoint):
    """One shard-kill chaos run over the cross-process router.

    The op mix: mostly submits across three models and both lanes, with
    SIGKILLs of a random shard and restarts sprinkled in.  No settling
    between ops — kills land while batches are in flight.  Afterwards
    every future must have resolved: answered requests match direct
    single-model serving (the re-homed survivors prove failover serves
    the same bits), failures carry ShardUnavailableError and nothing
    else, and the two tallies account for every submission.
    """
    rng = np.random.default_rng(seed)
    n_samples = _BINARY.features.shape[0]
    models = [f"chaos-shard-{i}" for i in range(3)]
    shard_names = ("shard-0", "shard-1")
    trace = []
    submitted = []
    kills = restarts = unavailable_at_submit = 0
    with ShardRouter(
        n_shards=len(shard_names),
        policy=AdmissionPolicy(max_batch=4, max_delay_seconds=0.005),
        method="priu",
    ) as router:
        for model_id in models:
            router.register(
                model_id, checkpoint, _BINARY.features, _BINARY.labels
            )
        drained = 0
        for op in range(n_ops):
            roll = rng.random()
            if roll < 0.72:
                model_id = models[rng.integers(len(models))]
                k = int(rng.integers(1, 4))
                ids = np.sort(
                    rng.choice(n_samples, size=k, replace=False)
                ).astype(np.int64)
                lane = "deadline" if rng.random() < 0.25 else "bulk"
                try:
                    future = router.submit(model_id, ids, lane=lane)
                except ShardUnavailableError:
                    unavailable_at_submit += 1
                    trace.append(f"[{op}] submit {model_id} -> unavailable")
                    continue
                submitted.append((op, model_id, ids, future))
                trace.append(f"[{op}] submit {model_id}/{lane} {ids.tolist()}")
            elif roll < 0.88:
                # Drain: wait out the oldest unresolved future, so the
                # run interleaves served batches with kills instead of
                # killing faster than anything can load.  Outcomes are
                # verified wholesale after the loop.
                pending = [
                    entry for entry in submitted if not entry[3].done()
                ]
                if pending:
                    try:
                        pending[0][3].result(timeout=120)
                    except Exception:
                        pass
                    drained += 1
                    trace.append(f"[{op}] drain op {pending[0][0]}")
            elif roll < 0.93:
                victim = shard_names[rng.integers(len(shard_names))]
                router.kill_shard(victim)
                kills += 1
                trace.append(f"[{op}] kill {victim}")
            else:
                name = shard_names[rng.integers(len(shard_names))]
                router.restart_shard(name)
                restarts += 1
                trace.append(f"[{op}] restart {name}")

        reference = fit_model("binary")
        answered = shard_failed = 0
        for op, model_id, ids, future in submitted:
            try:
                outcome = future.result(timeout=120)
            except ShardUnavailableError:
                shard_failed += 1
                continue
            except Exception as exc:
                raise AssertionError(
                    f"seed {seed}: op {op} failed with untyped "
                    f"{type(exc).__name__}: {exc}\n  trace:\n    "
                    + "\n    ".join(trace)
                )
            expected = reference.remove(ids, method="priu")
            np.testing.assert_allclose(
                outcome.weights, expected.weights, atol=1e-10, rtol=0.0,
                err_msg=f"seed {seed}: op {op} {model_id} {ids.tolist()}",
            )
            answered += 1
    if kills == 0 or answered == 0:
        raise AssertionError(
            f"seed {seed}: degenerate run (kills={kills} answered={answered})"
        )
    if answered + shard_failed != len(submitted):
        raise AssertionError(
            f"seed {seed}: futures unaccounted for "
            f"({answered} + {shard_failed} != {len(submitted)})"
        )
    return (
        f"answered={answered} shard_failed={shard_failed} "
        f"unavailable_at_submit={unavailable_at_submit} "
        f"kills={kills} restarts={restarts}"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds",
        default=",".join(
            str(s) for s in DEFAULT_SEEDS + COST_SEEDS + ROUTER_SEEDS
        ),
        help="comma-separated seed list (default: %(default)s); seeds in "
        f"{COST_SEEDS} also roll cost-model ops and seeds in "
        f"{ROUTER_SEEDS} chaos the cross-process ShardRouter instead",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=260,
        help="random operations per seed (default: %(default)s)",
    )
    parser.add_argument(
        "--instrument",
        action="store_true",
        help="run every seed under the lock race detector "
        "(repro.testing.races): instrumented locks, acquisition-order "
        "cycle detection, GuardedBy debug asserts",
    )
    args = parser.parse_args(argv)
    seeds = [int(token) for token in args.seeds.split(",") if token.strip()]

    failures = 0
    with tempfile.TemporaryDirectory(prefix="chaos-suite-") as scratch:
        checkpoint = Path(scratch) / "chaos-bin"
        fit_model("binary").save_checkpoint(checkpoint)
        for seed in seeds:
            start = time.perf_counter()
            try:
                if seed in ROUTER_SEEDS:
                    summary = run_router_seed(seed, args.ops, checkpoint)
                else:
                    summary = run_seed(
                        seed,
                        args.ops,
                        checkpoint,
                        cost=seed in COST_SEEDS,
                        instrument=args.instrument,
                    )
            except Exception:
                failures += 1
                print(f"seed {seed}: FAIL", flush=True)
                traceback.print_exc()
            else:
                elapsed = time.perf_counter() - start
                print(
                    f"seed {seed}: PASS ({summary}, {elapsed:.1f}s)",
                    flush=True,
                )
    print(
        f"chaos suite: {len(seeds) - failures}/{len(seeds)} seeds passed",
        flush=True,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
