"""Fleet serving: N models × mixed-lane traffic, SLA separation measured.

The fleet acceptance bar (ISSUE 4): with bulk traffic riding a generous
coalescing budget across several models, a ``deadline``-lane request must
pre-empt batching — its p99 end-to-end latency lands *below* the bulk
lane's p50.  The same run checks that fleet answers are numerically
identical to direct single-request serving.

Runable standalone (writes ``BENCH_fleet.json`` for the perf
trajectory)::

    PYTHONPATH=src REPRO_BENCH_SCALE=0.05 \
        python benchmarks/bench_fleet.py --out BENCH_fleet.json

The wall-clock distribution assertions (deadline p99 < bulk p50, bulk
waits reflect coalescing) hold comfortably on an idle machine but can
flake on a loaded shared runner, so they are opt-in:
``REPRO_BENCH_ASSERT_TIMING=1`` enforces them, the default records the
measured relation in the JSON only.  The lane-ordering *invariant* is
proved exactly, without wall time, by the fake-clock tier-1 tests
(``tests/serving/test_fleet.py`` / ``test_fleet_stress.py``).
"""

import json
import os
import time

from repro.bench import fleet_rows
from repro.bench.reporting import report

from conftest import workload

EXPERIMENTS = ["Cov (extended)", "HIGGS (extended)", "Heartbeat (extended)"]
MAX_DELAY = 0.25
ASSERT_TIMING = os.environ.get("REPRO_BENCH_ASSERT_TIMING", "") == "1"


def _run():
    workloads = [workload(name) for name in EXPERIMENTS]
    return fleet_rows(workloads, max_delay_seconds=MAX_DELAY)


def test_deadline_lane_p99_beats_bulk_lane_p50():
    rows, stats = _run()
    report(
        "fleet_lanes",
        f"Fleet serving: {len(EXPERIMENTS)} models, mixed-lane traffic",
        rows,
    )
    lanes = {row["lane"]: row for row in rows}
    # Identical numerics to direct single-request serving…
    assert lanes["bulk"]["max_abs_deviation"] < 1e-10
    # Everything was answered.
    assert stats["failed"] == 0 and stats["cancelled"] == 0
    assert stats["answered"] == stats["submitted"]
    # The wall-clock SLA relations are recorded always, asserted only on
    # request (REPRO_BENCH_ASSERT_TIMING=1): a loaded shared runner can
    # legitimately smear real-time percentiles.
    if ASSERT_TIMING:
        # Real SLA separation: the deadline lane's tail beats the bulk
        # lane's median.
        assert lanes["deadline"]["latency_p99"] < lanes["bulk"]["latency_p50"]
        # And the bulk median really reflects coalescing, not idleness.
        assert lanes["bulk"]["wait_p50"] >= MAX_DELAY * 0.5


# --------------------------------------------------------------- standalone
def main(out_path: str = "BENCH_fleet.json") -> dict:
    """Smoke-scale run recording the fleet SLA trajectory (CI artifact)."""
    from conftest import SCALE

    rows, stats = _run()
    lanes = {row["lane"]: row for row in rows}
    results = {
        "scale": SCALE,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "max_delay_seconds": MAX_DELAY,
        "models": EXPERIMENTS,
        "lanes": rows,
        "fleet_stats": stats,
        # The SLA relation the opt-in timing assertion enforces, recorded
        # for the perf trajectory regardless of assertion mode.
        "deadline_p99_below_bulk_p50": bool(
            lanes["deadline"]["latency_p99"] < lanes["bulk"]["latency_p50"]
        ),
    }
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {out_path}")
    for row in rows:
        print(
            f"  {row['method']:28s} n={row['n_requests']:3d} "
            f"latency p50 {row['latency_p50'] * 1e3:8.2f} ms  "
            f"p99 {row['latency_p99'] * 1e3:8.2f} ms"
        )
    return results


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_fleet.json")
    main(parser.parse_args().out)
