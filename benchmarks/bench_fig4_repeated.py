"""Figure 4: total time of 10 repeated subset removals (extended datasets).

The interpretability workload: provenance is collected once during the
initial training of Tcat; ten different random subsets (deletion rate 0.1%)
are then removed one after another.
"""

import pytest

from repro.bench import repeated_deletion_rows, run_update
from repro.bench.reporting import report

from conftest import requires_scale, workload

EXPERIMENTS = ["Cov (extended)", "HIGGS (extended)", "Heartbeat (extended)"]


@pytest.mark.parametrize("experiment", EXPERIMENTS)
@pytest.mark.parametrize("method", ["basel", "priu"])
def test_one_removal(benchmark, experiment, method):
    wl = workload(experiment)
    removed = wl.subset(0.001)
    benchmark.pedantic(
        lambda: run_update(wl, method, removed), rounds=2, warmup_rounds=1
    )


@pytest.mark.parametrize("experiment", EXPERIMENTS)
def test_report_fig4(experiment):
    requires_scale(0.05)
    wl = workload(experiment)
    rows = repeated_deletion_rows(wl, n_subsets=10, deletion_rate=0.001)
    tag = experiment.split(" ")[0].lower()
    report(f"fig4_{tag}", f"Fig 4: 10 repeated removals — {experiment}", rows)
    priu = next(r for r in rows if r["method"] == "priu")
    # Paper shape: clear cumulative speedup for the repeated workload.
    assert priu["speedup_vs_basel"] > 1.5


def test_higgs_extended_beats_heartbeat_extended():
    requires_scale(0.05)
    """Q7 on the repeated workload: fewer parameters -> larger speedup."""
    higgs_rows = repeated_deletion_rows(
        workload("HIGGS (extended)"), n_subsets=5, deletion_rate=0.001,
        methods=["basel", "priu"],
    )
    heartbeat_rows = repeated_deletion_rows(
        workload("Heartbeat (extended)"), n_subsets=5, deletion_rate=0.001,
        methods=["basel", "priu"],
    )
    speedup = lambda rows: next(
        r["speedup_vs_basel"] for r in rows if r["method"] == "priu"
    )
    assert speedup(higgs_rows) > speedup(heartbeat_rows)
