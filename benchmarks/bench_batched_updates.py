"""Batched multi-request updates: the Fig-4 workload served concurrently.

Two scenarios on the repeated-deletion datasets:

* **Fig-4 repeated deletions** — ten random subsets (rate 0.1%) removed
  from one fitted model, comparing the sequential seed path, the compiled
  ReplayPlan one request at a time, and one batched ``remove_many`` call.
* **Concurrent unlearning requests** — K simultaneous requests for
  growing K, the serving regime the batched GEMM engine targets.

Runable standalone (writes ``BENCH_batched.json`` for the perf
trajectory)::

    PYTHONPATH=src REPRO_BENCH_SCALE=0.05 \
        python benchmarks/bench_batched_updates.py --out BENCH_batched.json
"""

import json
import time

import numpy as np
import pytest

from repro.bench import batched_deletion_rows
from repro.bench.reporting import report

from conftest import requires_scale, workload

EXPERIMENTS = ["Cov (extended)", "HIGGS (extended)", "Heartbeat (extended)"]


@pytest.mark.parametrize("experiment", EXPERIMENTS)
def test_remove_many_ten_requests(benchmark, experiment):
    wl = workload(experiment)
    subsets = [wl.subset(0.001, seed=s) for s in range(10)]
    benchmark.pedantic(
        lambda: wl.trainer.remove_many(subsets, method="priu"),
        rounds=2,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("experiment", EXPERIMENTS)
def test_report_batched(experiment):
    requires_scale(0.05)
    wl = workload(experiment)
    rows = batched_deletion_rows(wl, n_subsets=10, deletion_rate=0.001)
    tag = experiment.split(" ")[0].lower()
    report(
        f"batched_{tag}",
        f"Batched updates: 10 concurrent removals — {experiment}",
        rows,
    )
    batched = next(r for r in rows if "remove_many" in r["method"])
    single = next(r for r in rows if "one-by-one" in r["method"])
    # Numerics must sit at noise level; the 1e-10 contract leaves headroom.
    assert batched["max_abs_deviation"] < 1e-10
    # Measured ≥3x on all three workloads; assert with margin for CI noise.
    assert batched["speedup_vs_sequential"] > 2.0
    # The compiled plan must not regress the single-request path.
    assert single["speedup_vs_sequential"] > 0.9


def test_batched_equals_sequential_on_fig4_workload():
    wl = workload("HIGGS (extended)")
    subsets = [wl.subset(0.001, seed=s) for s in range(10)]
    outcomes = wl.trainer.remove_many(subsets, method="priu")
    for outcome, subset in zip(outcomes, subsets):
        reference = wl.trainer.remove(subset, method="priu-seq")
        assert np.allclose(outcome.weights, reference.weights, atol=1e-10)


# --------------------------------------------------------------- standalone
def main(out_path: str = "BENCH_batched.json") -> dict:
    """Small-scale smoke run recording the perf trajectory (CI artifact)."""
    from conftest import SCALE

    results = {
        "scale": SCALE,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "fig4_repeated": [],
        "concurrent_requests": [],
    }
    for experiment in EXPERIMENTS:
        wl = workload(experiment)
        results["fig4_repeated"].extend(
            batched_deletion_rows(wl, n_subsets=10, deletion_rate=0.001)
        )
        for k in (1, 4, 16):
            subsets = [wl.subset(0.001, seed=s) for s in range(k)]
            start = time.perf_counter()
            wl.trainer.remove_many(subsets, method="priu")
            seconds = time.perf_counter() - start
            results["concurrent_requests"].append(
                {
                    "experiment": experiment,
                    "n_requests": k,
                    "total_seconds": seconds,
                    "seconds_per_request": seconds / k,
                }
            )
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {out_path}")
    for row in results["fig4_repeated"]:
        print(
            f"  {row['experiment']:24s} {row['method']:42s} "
            f"{row['total_seconds'] * 1000:9.1f} ms "
            f"x{row['speedup_vs_sequential']:.2f}"
        )
    return results


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_batched.json")
    main(parser.parse_args().out)
