"""Plan maintenance under commit churn: bounded bytes, flat latency.

The maintenance acceptance bar (ISSUE 5): over a 200-commit churn run,
the serving-resident footprint (provenance store + compiled plan) of a
maintained trainer stays *flat* while the never-maintained twin grows
monotonically — SVD summaries accumulate exact correction columns and
the multinomial slot map strands dead softmax rows.

The workload is Heartbeat (extended) with a mini-batch *below* the
feature count so the summaries are truncated-SVD factors (the widening
source) on top of the multinomial slot map (the garbage source) and the
frozen PrIU-opt eigen state (the staleness source).  Maintenance runs
the paper-mode ε-re-truncation (Theorem 6's tail-ratio criterion at the
store's own ε) — the configuration that returns widths to the
fresh-compile regime; the surfaced per-summary error bound and the
measured end-to-end deviation are asserted to stay inside the PrIU
``O(ε)`` envelope.  (The *exact* re-truncation mode — answers at atol
1e-10, widths capped at the operator dimension — is property-tested in
``tests/core/test_maintenance.py``.)

Runable standalone (writes ``BENCH_maintenance.json`` for the perf
trajectory)::

    PYTHONPATH=src REPRO_BENCH_SCALE=0.05 \
        python benchmarks/bench_maintenance.py --out BENCH_maintenance.json

The wall-clock assertion (maintained commit p50 stays within 2x of the
unmaintained run's — maintenance must not tax the service path) is
opt-in via ``REPRO_BENCH_ASSERT_TIMING=1`` like ``bench_fleet.py``;
the byte-growth and error-envelope assertions always run.
"""

import dataclasses
import json
import os
import time

from repro.bench import CONFIGS, maintenance_rows, prepare_workload
from repro.bench.reporting import report

N_COMMITS = 200
MAINTAIN_EVERY = 20
ASSERT_TIMING = os.environ.get("REPRO_BENCH_ASSERT_TIMING", "") == "1"

_CACHE: dict = {}


def _workload():
    """Heartbeat (extended) with SVD-compressed summaries (B < m)."""
    if "workload" not in _CACHE:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
        base = CONFIGS["Heartbeat (extended)"]
        config = dataclasses.replace(
            base,
            name="Heartbeat (churn)",
            batch_size=96,
            scale=base.scale * scale,
        )
        _CACHE["workload"] = prepare_workload(config)
        _CACHE["scale"] = scale
    return _CACHE["workload"]


def _run():
    if "result" not in _CACHE:
        workload = _workload()
        _CACHE["result"] = maintenance_rows(
            workload,
            n_commits=N_COMMITS,
            maintain_every=MAINTAIN_EVERY,
            # Paper-mode reclamation: Theorem 6's tail-ratio criterion at
            # the capture ε, returning widths to the fresh-compile regime.
            svd_epsilon=workload.trainer.epsilon,
        )
    return _CACHE["result"]


def test_maintenance_bounds_state_within_the_epsilon_envelope():
    rows, extras = _run()
    report(
        "maintenance_churn",
        f"Plan maintenance over {N_COMMITS} commits "
        f"(maintain every {MAINTAIN_EVERY})",
        rows,
    )
    by_mode = {row["mode"]: row for row in rows}
    plain = by_mode["unmaintained"]
    kept = by_mode["maintained"]
    epsilon = _workload().trainer.epsilon
    # Without maintenance the footprint grows monotonically with commits…
    unmaintained_series = extras["series"]["unmaintained"]["serving_bytes"]
    assert all(
        later >= earlier
        for earlier, later in zip(unmaintained_series, unmaintained_series[1:])
    )
    assert plain["serving_bytes_final"] > plain["serving_bytes_first"]
    # …while maintenance keeps it flat: the run never ends above its
    # first sample, and every growth counter is back at zero.
    assert kept["serving_bytes_final"] <= kept["serving_bytes_first"]
    assert kept["serving_bytes_final"] < plain["serving_bytes_final"]
    assert kept["svd_correction_columns"] == 0
    assert kept["slot_garbage_rows"] == 0
    assert kept["svd_max_width"] < plain["svd_max_width"]
    # ε-re-truncation's surfaced bound honors the Theorem-6 criterion and
    # the end-to-end deviation stays inside the PrIU approximation
    # envelope (the exact mode's 1e-10 contract is property-tested in
    # tests/core/test_maintenance.py).
    assert kept["svd_max_relative_error"] <= epsilon * 1.001
    assert extras["max_abs_deviation"] < 0.05
    if ASSERT_TIMING:
        # Maintenance must not tax the commit/service path itself.
        assert kept["commit_p50_seconds"] <= 2.0 * plain["commit_p50_seconds"]


# --------------------------------------------------------------- standalone
def main(out_path: str = "BENCH_maintenance.json") -> dict:
    """Churn-scale run recording the maintenance trajectory (CI artifact)."""
    rows, extras = _run()
    by_mode = {row["mode"]: row for row in rows}
    results = {
        "scale": _CACHE["scale"],
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "n_commits": N_COMMITS,
        "maintain_every": MAINTAIN_EVERY,
        "rows": rows,
        "series": extras["series"],
        "max_abs_deviation": extras["max_abs_deviation"],
        # The relation the acceptance bar enforces, recorded for the
        # perf trajectory regardless of assertion mode.
        "maintained_bytes_flat": bool(
            by_mode["maintained"]["serving_bytes_final"]
            <= by_mode["maintained"]["serving_bytes_first"]
        ),
        "unmaintained_bytes_monotone": bool(
            by_mode["unmaintained"]["serving_bytes_final"]
            > by_mode["unmaintained"]["serving_bytes_first"]
        ),
    }
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {out_path}")
    for row in rows:
        print(
            f"  {row['mode']:12s} commits={row['n_commits']:3d} "
            f"bytes {row['serving_bytes_first'] / 1e6:7.1f} -> "
            f"{row['serving_bytes_final'] / 1e6:7.1f} MB  "
            f"commit p50 {row['commit_p50_seconds'] * 1e3:7.2f} ms  "
            f"svd width max {row['svd_max_width']:4d}"
        )
    return results


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_maintenance.json")
    main(parser.parse_args().out)
