"""Figure 3: logistic update time across feature-space regimes.

* fig3a Heartbeat — mid-size dense parameter space (~1k parameters)
* fig3b HIGGS — small dense, binary
* fig3c RCV1 (sparse, PrIU only) and cifar10 (large dense, PrIU only)
"""

import pytest

from repro.bench import DELETION_RATES, run_update, sweep_update_times
from repro.bench.reporting import report

from conftest import requires_scale, workload

SMALL_RATE = 0.001


@pytest.mark.parametrize("experiment", ["Heartbeat", "HIGGS"])
@pytest.mark.parametrize("method", ["basel", "priu", "priu-opt"])
def test_update_dense(benchmark, experiment, method):
    wl = workload(experiment)
    removed = wl.subset(SMALL_RATE)
    benchmark.pedantic(
        lambda: run_update(wl, method, removed), rounds=3, warmup_rounds=1
    )


@pytest.mark.parametrize("experiment", ["RCV1", "cifar10"])
@pytest.mark.parametrize("method", ["basel", "priu"])
def test_update_large_feature_space(benchmark, experiment, method):
    wl = workload(experiment)
    removed = wl.subset(SMALL_RATE)
    benchmark.pedantic(
        lambda: run_update(wl, method, removed), rounds=3, warmup_rounds=1
    )


@pytest.mark.parametrize(
    "fig_id, experiment",
    [("fig3a", "Heartbeat"), ("fig3b", "HIGGS")],
)
def test_report_fig3_dense(fig_id, experiment):
    wl = workload(experiment)
    rows = sweep_update_times(wl, DELETION_RATES)
    report(fig_id, f"Fig 3: update time, logistic — {experiment}", rows)


def test_report_fig3c():
    requires_scale(0.05)
    rows = []
    for experiment in ("RCV1", "cifar10"):
        wl = workload(experiment)
        rows.extend(
            sweep_update_times(wl, (0.001, 0.01, 0.1), methods=["basel", "priu"])
        )
    report("fig3c", "Fig 3c: update time — RCV1 (sparse) and cifar10", rows)
    # Paper shape: marginal gain on sparse data, clear gain on large dense.
    rcv1 = [
        r for r in rows if r["experiment"] == "RCV1" and r["method"] == "priu"
    ]
    cifar = [
        r for r in rows if r["experiment"] == "cifar10" and r["method"] == "priu"
    ]
    assert max(r["speedup_vs_basel"] for r in rcv1) < 3.0
    assert max(r["speedup_vs_basel"] for r in cifar) > 1.2


def test_smaller_parameter_count_updates_faster():
    requires_scale(0.05)
    """Q7: update time grows with the number of model parameters."""
    higgs = workload("HIGGS")  # 28 parameters
    heartbeat = workload("Heartbeat")  # ~940 parameters
    rate = 0.001
    t_higgs = sweep_update_times(higgs, [rate], methods=["priu"])[0][
        "update_seconds"
    ]
    t_heartbeat = sweep_update_times(heartbeat, [rate], methods=["priu"])[0][
        "update_seconds"
    ]
    # Per-iteration PrIU cost is O(rm): normalize by iteration count.
    per_iter_higgs = t_higgs / higgs.config.n_iterations
    per_iter_heartbeat = t_heartbeat / heartbeat.config.n_iterations
    assert per_iter_heartbeat > per_iter_higgs
