"""Commit cost: incremental plan refresh vs full recompilation.

The commit path (ISSUE 3) folds a served deletion back into the store and
the compiled ReplayPlan.  The store compaction is shared; what
``plan_refresh_threshold`` trades on is how the plan catches up — patching
the affected iterations/slots in place (``refresh``) versus rebuilding the
whole SoA layout (``recompile``).  The acceptance bar: on the Fig-4
workloads, for removals touching ≤ 1% of the samples, the incremental
refresh must beat the full recompile while answering fresh queries
identically (atol 1e-10).

Runable standalone (writes ``BENCH_refresh.json`` for the perf
trajectory)::

    PYTHONPATH=src REPRO_BENCH_SCALE=0.05 \
        python benchmarks/bench_refresh.py --out BENCH_refresh.json
"""

import json
import time

import pytest

from repro.bench import refresh_rows
from repro.bench.reporting import report

from conftest import workload

EXPERIMENTS = ["Cov (extended)", "HIGGS (extended)", "Heartbeat (extended)"]
DELETION_RATE = 0.001  # the Fig-4 repeated-deletion rate


@pytest.mark.parametrize("experiment", EXPERIMENTS)
def test_incremental_refresh_beats_recompile(experiment):
    wl = workload(experiment)
    # Fig-4 rate for the recorded trajectory + a single-sample removal,
    # which stays in the incremental-refresh regime at every bench scale
    # (smoke scales inflate the Fig-4 rate's touched-iteration fraction
    # past plan_refresh_threshold, where the trainer recompiles anyway).
    fig4_rows = refresh_rows(wl, deletion_rate=DELETION_RATE)
    single_rows = refresh_rows(wl, deletion_rate=0.0)
    tag = experiment.split(" ")[0].lower()
    report(
        f"refresh_{tag}",
        f"Commit cost: plan refresh vs recompile — {experiment}",
        fig4_rows + single_rows,
    )
    fig4 = next(r for r in fig4_rows if r["mode"] == "refresh")
    single = next(r for r in single_rows if r["mode"] == "refresh")
    # Identical post-commit answers on both paths…
    assert fig4["max_abs_deviation"] < 1e-10
    assert single["max_abs_deviation"] < 1e-10
    # …and inside the refresh regime the incremental patch must win.
    assert single["speedup_vs_recompile"] > 1.0
    if fig4["fraction_iterations_touched"] <= 0.25:
        assert fig4["speedup_vs_recompile"] > 1.0


# --------------------------------------------------------------- standalone
def main(out_path: str = "BENCH_refresh.json") -> dict:
    """Smoke-scale run recording the commit-cost trajectory (CI artifact)."""
    from conftest import SCALE

    results = {
        "scale": SCALE,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "deletion_rate": DELETION_RATE,
        "commit_costs": [],
    }
    for experiment in EXPERIMENTS:
        wl = workload(experiment)
        for rate in (DELETION_RATE, 0.0):  # 0.0 → single-sample removal
            results["commit_costs"].extend(
                refresh_rows(wl, deletion_rate=rate)
            )
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {out_path}")
    for row in results["commit_costs"]:
        print(
            f"  {row['experiment']:24s} {row['mode']:9s} "
            f"{row['plan_sync_seconds'] * 1000:9.2f} ms "
            f"(+{row['compact_seconds'] * 1000:.2f} ms compact, "
            f"{row['fraction_iterations_touched'] * 100:5.1f}% iters) "
            f"speedup {row['speedup_vs_recompile']:.2f}x"
        )
    return results


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_refresh.json")
    main(parser.parse_args().out)
