"""Figure 1: update time for linear regression (SGEMM original + extended).

``test_update_*`` are pytest-benchmark targets measuring one update call per
method; ``test_report_*`` sweeps the full deletion-rate axis and persists the
paper-style series under ``results/``.
"""

import pytest

from repro.bench import DELETION_RATES, run_update, sweep_update_times
from repro.bench.reporting import report

from conftest import requires_scale, workload

METHODS_ORIGINAL = ["basel", "priu", "priu-opt", "closed-form", "infl"]
SMALL_RATE = 0.001
LARGE_RATE = 0.1


@pytest.mark.parametrize("method", METHODS_ORIGINAL)
@pytest.mark.parametrize("rate", [SMALL_RATE, LARGE_RATE])
def test_update_sgemm_original(benchmark, method, rate):
    wl = workload("SGEMM (original)")
    removed = wl.subset(rate)
    benchmark.pedantic(
        lambda: run_update(wl, method, removed), rounds=3, warmup_rounds=1
    )


@pytest.mark.parametrize("method", METHODS_ORIGINAL)
def test_update_sgemm_extended(benchmark, method):
    wl = workload("SGEMM (extended)")
    removed = wl.subset(SMALL_RATE)
    benchmark.pedantic(
        lambda: run_update(wl, method, removed), rounds=3, warmup_rounds=1
    )


def test_report_fig1a():
    requires_scale(0.05)
    wl = workload("SGEMM (original)")
    rows = sweep_update_times(wl, DELETION_RATES)
    report("fig1a", "Fig 1a: update time, linear regression — SGEMM (original)", rows)
    basel = {r["deletion_rate"]: r for r in rows if r["method"] == "basel"}
    opt = {r["deletion_rate"]: r for r in rows if r["method"] == "priu-opt"}
    # Paper shape: PrIU-opt wins by >10x at small deletion rates.
    assert opt[min(DELETION_RATES)]["speedup_vs_basel"] > 10
    assert basel[min(DELETION_RATES)]["speedup_vs_basel"] == 1.0


def test_report_fig1b():
    requires_scale(0.05)
    wl = workload("SGEMM (extended)")
    rows = sweep_update_times(wl, DELETION_RATES)
    report("fig1b", "Fig 1b: update time, linear regression — SGEMM (extended)", rows)
    small = min(DELETION_RATES)
    by_method = {
        r["method"]: r for r in rows if r["deletion_rate"] == small
    }
    # Paper shape: PrIU-opt significantly better than PrIU, and faster than
    # the closed-form incremental baseline once m is large.
    assert (
        by_method["priu-opt"]["update_seconds"]
        < by_method["priu"]["update_seconds"]
    )
    assert (
        by_method["priu-opt"]["update_seconds"]
        < by_method["closed-form"]["update_seconds"]
    )
