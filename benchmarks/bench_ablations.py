"""Ablations over PrIU's design choices (DESIGN.md §4).

* SVD ε: accuracy/rank trade-off of the provenance compression (Theorem 6)
* interpolation grid: linearization error vs grid resolution (Theorem 4)
* freeze fraction t_s: PrIU-opt's early-stop point (Sec. 5.4 rule of thumb)
"""

import dataclasses

import numpy as np
import pytest

from repro.bench import CONFIGS, prepare_workload
from repro.bench.reporting import report
from repro.core import PrIUOptLogisticUpdater, PrIUUpdater, train_with_capture
from repro.datasets import make_binary_classification, make_regression
from repro.linalg import sigmoid_complement_interpolator
from repro.models import make_schedule, objective_for, train

from conftest import workload


def test_ablation_svd_epsilon(benchmark):
    """ε sweep: smaller ε -> higher rank, more memory, less deviation."""
    data = make_regression(2000, 60, seed=301)
    objective = objective_for("linear", 0.1)
    schedule = make_schedule(data.n_samples, 30, 150, seed=81)
    removed = list(range(20))
    reference = train(
        objective, data.features, data.labels, schedule, 0.01,
        exclude=set(removed),
    ).weights

    def run(epsilon):
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
            compression="svd", epsilon=epsilon,
        )
        updater = PrIUUpdater(store, data.features, data.labels)
        deviation = np.linalg.norm(updater.update(removed) - reference)
        mean_rank = np.mean([record.summary.rank for record in store.records])
        return {
            "epsilon": epsilon,
            "mean_rank": float(mean_rank),
            "store_mb": store.nbytes() / 1e6,
            "deviation": deviation,
        }

    rows = [run(epsilon) for epsilon in (0.5, 0.1, 0.01, 1e-4)]
    benchmark.pedantic(lambda: run(0.01), rounds=1)
    report("ablation_svd_epsilon", "Ablation: SVD ε (Theorem 6)", rows)
    assert rows[-1]["deviation"] <= rows[0]["deviation"]
    assert rows[-1]["mean_rank"] >= rows[0]["mean_rank"]


def test_ablation_interpolation_grid(benchmark):
    """Grid sweep: deviation from BaseL shrinks ~quadratically (Theorem 4)."""
    data = make_binary_classification(1500, 10, seed=302)
    objective = objective_for("binary_logistic", 0.01)
    schedule = make_schedule(data.n_samples, 100, 200, seed=82)
    removed = list(range(15))
    reference = train(
        objective, data.features, data.labels, schedule, 0.1,
        exclude=set(removed),
    ).weights

    def run(n_intervals):
        interp = sigmoid_complement_interpolator(n_intervals=n_intervals)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.1,
            interpolator=interp,
        )
        updater = PrIUUpdater(store, data.features, data.labels)
        return {
            "n_intervals": n_intervals,
            "deviation": np.linalg.norm(updater.update(removed) - reference),
        }

    rows = [run(n) for n in (16, 64, 1024, 100_000)]
    benchmark.pedantic(lambda: run(1024), rounds=1)
    report(
        "ablation_interpolation",
        "Ablation: interpolation grid (Theorem 4)",
        rows,
    )
    deviations = [row["deviation"] for row in rows]
    assert deviations == sorted(deviations, reverse=True)


def test_ablation_freeze_fraction(benchmark):
    """t_s sweep around the paper's 70% rule of thumb (Sec. 5.4)."""
    data = make_binary_classification(1500, 10, seed=303)
    objective = objective_for("binary_logistic", 0.01)
    schedule = make_schedule(data.n_samples, 100, 200, seed=83)
    removed = list(range(15))
    reference = train(
        objective, data.features, data.labels, schedule, 0.1,
        exclude=set(removed),
    ).weights

    def run(freeze):
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.1,
            freeze_at=freeze,
        )
        opt = PrIUOptLogisticUpdater(store, data.features, data.labels)
        return {
            "freeze_fraction": freeze,
            "deviation": np.linalg.norm(opt.update(removed) - reference),
            "store_mb": store.nbytes() / 1e6,
        }

    rows = [run(freeze) for freeze in (0.3, 0.5, 0.7, 0.9)]
    benchmark.pedantic(lambda: run(0.7), rounds=1)
    report("ablation_freeze", "Ablation: PrIU-opt freeze point t_s", rows)
    assert rows[-1]["deviation"] <= rows[0]["deviation"] + 1e-9


def test_ablation_compression_toggle(benchmark):
    """PrIU with vs without SVD on the m > B regime (Sec. 5.1 motivation).

    SGEMM (extended) appends *random* features, so its batch grams have a
    flat spectrum and the ε-rank stays near B — the factors can even exceed
    the dense matrix in bytes. This is precisely the regime where the paper
    leans on PrIU-opt instead; the invariant SVD caching does guarantee is
    rank ≤ B, and the update stays correct either way.
    """
    config = dataclasses.replace(
        CONFIGS["SGEMM (extended)"], scale=CONFIGS["SGEMM (extended)"].scale * 0.05
    )
    wl = prepare_workload(config)
    removed = wl.subset(0.01)
    dense_result, dense_store = train_with_capture(
        wl.trainer.objective,
        wl.dataset.features,
        wl.dataset.labels,
        wl.trainer.schedule,
        wl.trainer.learning_rate,
        compression="none",
    )
    ranks = [record.summary.rank for record in wl.trainer.store.records]
    rows = [
        {
            "variant": "svd (auto)",
            "store_mb": wl.trainer.store.nbytes() / 1e6,
            "mean_rank": float(np.mean(ranks)),
        },
        {
            "variant": "dense",
            "store_mb": dense_store.nbytes() / 1e6,
            "mean_rank": float(wl.dataset.n_features),
        },
    ]
    benchmark.pedantic(
        lambda: PrIUUpdater(wl.trainer.store, wl.dataset.features,
                            wl.dataset.labels).update(removed),
        rounds=2,
    )
    report("ablation_compression", "Ablation: SVD compression on/off", rows)
    assert max(ranks) <= wl.trainer.batch_size
    # Both representations produce the same updated model up to the
    # Theorem 6 O(ε) deviation (ε = 0.01 here).
    compressed = PrIUUpdater(
        wl.trainer.store, wl.dataset.features, wl.dataset.labels
    ).update(removed)
    dense = PrIUUpdater(
        dense_store, wl.dataset.features, wl.dataset.labels
    ).update(removed)
    assert np.linalg.norm(compressed - dense) <= 0.05 * max(
        1.0, np.linalg.norm(dense)
    )
