"""Figure 2: logistic update time on Cov — mini-batch and iteration effects.

Q6's contrast: Cov (small) vs Cov (large 1) isolates the mini-batch size B;
Cov (large 1) vs (large 2) isolates the iteration count τ.
"""

import pytest

from repro.bench import DELETION_RATES, run_update, sweep_update_times
from repro.bench.reporting import report

from conftest import requires_scale, workload

EXPERIMENTS = ["Cov (small)", "Cov (large 1)", "Cov (large 2)"]
SMALL_RATE = 0.001


@pytest.mark.parametrize("experiment", EXPERIMENTS)
@pytest.mark.parametrize("method", ["basel", "priu", "priu-opt"])
def test_update_cov(benchmark, experiment, method):
    wl = workload(experiment)
    removed = wl.subset(SMALL_RATE)
    benchmark.pedantic(
        lambda: run_update(wl, method, removed), rounds=3, warmup_rounds=1
    )


@pytest.mark.parametrize(
    "fig_id, experiment",
    [("fig2a", "Cov (small)"), ("fig2b", "Cov (large 1)"), ("fig2c", "Cov (large 2)")],
)
def test_report_fig2(fig_id, experiment):
    requires_scale(0.05)
    wl = workload(experiment)
    rows = sweep_update_times(wl, DELETION_RATES)
    report(fig_id, f"Fig 2: update time, logistic — {experiment}", rows)
    opt_small = next(
        r
        for r in rows
        if r["method"] == "priu-opt" and r["deletion_rate"] == min(DELETION_RATES)
    )
    assert opt_small["speedup_vs_basel"] > 1.0


def test_larger_minibatch_gives_larger_speedup():
    requires_scale(0.05)
    """Q6: the PrIU speedup grows with the mini-batch size."""
    small = workload("Cov (small)")
    large = workload("Cov (large 1)")
    rate = min(DELETION_RATES)
    rows_small = sweep_update_times(small, [rate], methods=["basel", "priu"])
    rows_large = sweep_update_times(large, [rate], methods=["basel", "priu"])
    speedup_small = next(
        r["speedup_vs_basel"] for r in rows_small if r["method"] == "priu"
    )
    speedup_large = next(
        r["speedup_vs_basel"] for r in rows_large if r["method"] == "priu"
    )
    assert speedup_large > speedup_small


def test_iteration_count_scales_memory_not_speedup():
    """Q6/Q8: τ scales provenance memory ~linearly; speedups stay similar."""
    one = workload("Cov (large 1)")
    two = workload("Cov (large 2)")
    ratio_iters = (
        two.config.n_iterations / one.config.n_iterations
    )
    ratio_memory = two.trainer.store.nbytes() / one.trainer.store.nbytes()
    assert ratio_memory == pytest.approx(ratio_iters, rel=0.5)
