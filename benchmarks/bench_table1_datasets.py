"""Table 1: characteristics of the dataset analogues."""

from repro.bench import dataset_summary_rows
from repro.bench.reporting import report


def test_report_table1(benchmark):
    rows = benchmark.pedantic(dataset_summary_rows, rounds=1)
    report("table1", "Table 1: dataset analogues", rows)
    by_name = {row["name"]: row for row in rows}
    # The shape regimes the evaluation depends on.
    assert by_name["SGEMM"]["task"] == "linear"
    assert by_name["RCV1"]["sparse"]
    assert by_name["cifar10"]["# features"] * by_name["cifar10"]["# classes"] > 1000
    assert by_name["HIGGS"]["# samples"] == max(r["# samples"] for r in rows)
