"""Roofline replay kernel: blocked GEMMs vs per-iteration dispatch.

The blocked kernel (:mod:`repro.core.kernels`) targets the paper's
dominant ``m ≫ B`` regime: each per-iteration replay product touches at
most ``B`` summary columns of an ``m``-dimensional weight vector, so a
τ-step replay is τ dispatches of work far below the BLAS roofline —
bound by Python/launch overhead, not arithmetic.  Fusing ``b``
iterations into one rank-``Σr`` descriptor replaces them with two large
GEMMs of *identical* flops, so any measured win is pure dispatch
amortization — exactly what the roofline model predicts for skinny
operands.

This benchmark measures:

* ``kernel_sweep`` — replay seconds per iteration, blocked vs scalar,
  across block sizes and request widths K on the ``m ≫ B`` workload.
  The row keys ``blocked_seconds_per_iteration`` /
  ``scalar_seconds_per_iteration`` are what
  :meth:`repro.core.costmodel.Calibration.from_bench` fits the
  fused/scalar cost coefficients from — the decision ring's
  blocked-vs-scalar veto is calibrated by this table.
* ``retruncation`` — incremental vs full SVD re-truncation
  (:func:`repro.linalg.svd.retruncate_summary` with/without
  ``appended``) on commit-widened factors in the few-columns regime the
  crossover rule targets.

Answer deviations (blocked vs scalar replay at atol 1e-10, incremental
vs full reconstruction at 1e-10) are asserted **unconditionally** — a
fast wrong kernel must fail the bench run, not ship a JSON.  Timing
ratios (blocked speedup ≥ 2×, incremental beating full) are asserted
only under ``REPRO_BENCH_ASSERT_TIMING=1``: wall-clock on shared CI
runners is noisy, and the smoke scale shrinks ``m`` below the regime
where the win is guaranteed.  The JSON records them either way.

Runable standalone (writes ``BENCH_kernel.json`` for the perf
trajectory)::

    PYTHONPATH=src REPRO_BENCH_SCALE=0.1 \
        python benchmarks/bench_kernel.py --out BENCH_kernel.json
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import ReplayPlan, train_with_capture
from repro.linalg import retruncate_summary, truncate_summary
from repro.linalg.svd import incremental_retruncation_wins
from repro.models import make_schedule, objective_for

ROOT = Path(__file__).resolve().parents[1]
ASSERT_TIMING = os.environ.get("REPRO_BENCH_ASSERT_TIMING", "") == "1"

ATOL = 1e-10
#: The acceptance bar on the m ≫ B sweep (ISSUE 10).
TARGET_SPEEDUP = 2.0

#: Full-scale m ≫ B workload: 600 features, mini-batches of 10, 300
#: replay iterations, truncated-SVD summaries.  REPRO_BENCH_SCALE
#: shrinks m and τ together (B is the paper's "small" axis and stays —
#: the smaller B is relative to m, the more each scalar iteration is
#: dispatch overhead rather than arithmetic, which is the regime the
#: fused kernel exists for).
FULL_FEATURES = 600
FULL_ITERATIONS = 300
BATCH = 10
#: Keeps each sample in ≲1 expected mini-batch (n ≈ 4·τ·B at full
#: scale), so a 2-sample GDPR removal invalidates only a block or two
#: and the sweep measures the fused path, not the hit fallback.
N_SAMPLES_PER_FEATURE = 20

BLOCK_SIZES = (4, 8, 16, 32)
REQUEST_WIDTHS = (1, 8)
N_REPEATS = 5


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


def _workload():
    """Capture one m ≫ B run; returns (features, labels, store)."""
    m = max(40, int(round(FULL_FEATURES * _scale())))
    tau = max(60, int(round(FULL_ITERATIONS * _scale())))
    n = m * N_SAMPLES_PER_FEATURE
    rng = np.random.default_rng(17)
    # Well-conditioned isotropic features: the B×m batch grams have
    # spectral norm ≈ (√m + √B)²/B, so a 0.01 learning rate keeps the
    # replay contraction stable and answers O(1) — the 1e-10 deviation
    # contract is meaningless on a diverging trajectory.
    features = rng.standard_normal((n, m))
    labels = features @ rng.standard_normal(m) / np.sqrt(m)
    labels += 0.01 * rng.standard_normal(n)
    schedule = make_schedule(n, BATCH, tau, seed=29)
    objective = objective_for("linear", 0.1)
    _, store = train_with_capture(
        objective, features, labels, schedule, 0.01,
        compression="svd", epsilon=0.01,
    )
    return features, labels, store


def _removal_sets(n_samples, k, rng):
    """K small removal sets (a handful of hits each — the GDPR shape)."""
    return [
        rng.choice(n_samples, size=2, replace=False) for _ in range(k)
    ]


def _time_replay(plan, sets):
    """Median replay seconds over N_REPEATS runs of the same query."""
    timings = []
    answer = None
    for _ in range(N_REPEATS):
        start = time.perf_counter()
        answer = plan.run(sets)
        timings.append(time.perf_counter() - start)
    return float(np.median(timings)), answer


def _sweep_rows(features, labels, store):
    """Blocked-vs-scalar timing across block sizes and request widths."""
    tau = len(store)
    scalar_plan = ReplayPlan(store, features, labels, kernel_block_size=1)
    rng = np.random.default_rng(43)
    rows = []
    worst_deviation = 0.0
    for k in REQUEST_WIDTHS:
        sets = _removal_sets(store.n_samples, k, rng)
        scalar_seconds, scalar_answer = _time_replay(scalar_plan, sets)
        for block_size in BLOCK_SIZES:
            plan = ReplayPlan(
                store, features, labels, kernel_block_size=block_size
            )
            blocked_seconds, blocked_answer = _time_replay(plan, sets)
            deviation = float(
                np.max(np.abs(blocked_answer - scalar_answer))
            )
            worst_deviation = max(worst_deviation, deviation)
            stats = plan.kernel_stats()
            rows.append(
                {
                    "block_size": block_size,
                    "n_requests": k,
                    "n_iterations": tau,
                    "n_features": store.n_features,
                    "batch_size": BATCH,
                    "blocked_seconds": blocked_seconds,
                    "scalar_seconds": scalar_seconds,
                    "blocked_seconds_per_iteration": blocked_seconds / tau,
                    "scalar_seconds_per_iteration": scalar_seconds / tau,
                    "speedup": scalar_seconds / max(blocked_seconds, 1e-12),
                    "fused_fraction": (
                        plan._kernel.fused_iterations() / tau
                        if plan._kernel is not None
                        else 0.0
                    ),
                    "blocks_compiled": stats["blocks_compiled"],
                    "max_abs_deviation": deviation,
                }
            )
    return rows, worst_deviation


def _widened_summary(rng, m, base_rank, appended):
    """A truncated summary with exact rank-1 corrections appended — the
    shape ``ProvenanceStore.compact`` leaves behind after commits."""
    basis = rng.standard_normal((m, base_rank))
    summary = truncate_summary(
        basis @ basis.T, epsilon=1e-12, symmetric=True
    )
    for _ in range(appended):
        row = rng.standard_normal(m) * 0.3
        summary = type(summary)(
            left=np.hstack([summary.left, -row[:, None]]),
            right=np.hstack([summary.right, row[:, None]]),
        )
    return summary


def _retruncation_rows():
    """Incremental vs full re-truncation in the few-columns regime."""
    m = max(40, int(round(FULL_FEATURES * _scale())))
    rng = np.random.default_rng(59)
    rows = []
    worst_deviation = 0.0
    for base_rank, appended in ((BATCH, 2), (BATCH, 4), (2 * BATCH, 8)):
        assert incremental_retruncation_wins(base_rank, appended)
        summaries = [
            _widened_summary(rng, m, base_rank, appended) for _ in range(6)
        ]
        full_times, incremental_times = [], []
        for summary in summaries:
            start = time.perf_counter()
            full = retruncate_summary(summary)
            full_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            incremental = retruncate_summary(summary, appended=appended)
            incremental_times.append(time.perf_counter() - start)
            assert incremental.method == "incremental"
            assert full.method == "qr"
            deviation = float(
                np.max(
                    np.abs(
                        incremental.summary.reconstruct()
                        - full.summary.reconstruct()
                    )
                )
            )
            worst_deviation = max(worst_deviation, deviation)
        full_seconds = float(np.median(full_times))
        incremental_seconds = float(np.median(incremental_times))
        rows.append(
            {
                "n_features": m,
                "retained_rank": base_rank,
                "appended_columns": appended,
                "full_seconds": full_seconds,
                "incremental_seconds": incremental_seconds,
                "speedup": full_seconds / max(incremental_seconds, 1e-12),
                "max_abs_deviation": worst_deviation,
            }
        )
    return rows, worst_deviation


def main(out_path: str = "BENCH_kernel.json") -> dict:
    features, labels, store = _workload()
    sweep, sweep_deviation = _sweep_rows(features, labels, store)
    retruncation, retrunc_deviation = _retruncation_rows()

    # Correctness is unconditional: a fast wrong kernel must not ship.
    assert sweep_deviation <= ATOL, (
        f"blocked replay deviates {sweep_deviation:.2e} > {ATOL:.0e}"
    )
    assert retrunc_deviation <= ATOL, (
        f"incremental re-truncation deviates {retrunc_deviation:.2e}"
    )

    best = max(row["speedup"] for row in sweep)
    retrunc_speedup = min(row["speedup"] for row in retruncation)
    results = {
        "scale": _scale(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "target_speedup": TARGET_SPEEDUP,
        "kernel_sweep": sweep,
        "retruncation": retruncation,
        "best_blocked_speedup": float(best),
        "min_incremental_retruncation_speedup": float(retrunc_speedup),
        "max_abs_deviation": float(max(sweep_deviation, retrunc_deviation)),
        "within_bar": {
            "blocked_speedup": bool(best >= TARGET_SPEEDUP),
            "incremental_retruncation": bool(retrunc_speedup > 1.0),
        },
    }
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {out_path}")
    for row in sweep:
        print(
            f"  block={row['block_size']:3d} K={row['n_requests']}  "
            f"scalar {row['scalar_seconds'] * 1e3:7.2f} ms  "
            f"blocked {row['blocked_seconds'] * 1e3:7.2f} ms  "
            f"speedup {row['speedup']:5.2f}x  "
            f"fused {row['fused_fraction']:.2f}"
        )
    for row in retruncation:
        print(
            f"  retruncate rank={row['retained_rank']:3d}"
            f"+{row['appended_columns']}  "
            f"full {row['full_seconds'] * 1e3:6.2f} ms  "
            f"incremental {row['incremental_seconds'] * 1e3:6.2f} ms  "
            f"speedup {row['speedup']:5.2f}x"
        )

    if ASSERT_TIMING:
        assert best >= TARGET_SPEEDUP, (
            f"best blocked speedup {best:.2f}x < {TARGET_SPEEDUP}x"
        )
        assert retrunc_speedup > 1.0, (
            f"incremental re-truncation slower than full "
            f"({retrunc_speedup:.2f}x)"
        )
    return results


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernel.json")
    args = parser.parse_args()
    main(args.out)
