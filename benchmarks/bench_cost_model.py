"""Cost-model accountability: every estimate meets its executed actual.

The cost model (PR 7) replaces fixed scheduling constants with
calibrated predictions — refresh-vs-recompile from the crossing of the
two fitted cost curves, plan-patch bytes from the packed occurrence
index, batch early-closing from observed service times.  Predictions
are only trustworthy if they are *checked*, so this benchmark drives
estimate→remove→commit rounds across three workload shapes (dense
binary flats, SVD-compressed summaries, linear moments) and drains each
:class:`~repro.core.costmodel.CostModel` decision ring into a
per-decision predicted-vs-actual table.

The acceptance bar (ISSUE 7): the recorded relative error stays within
0.5 on both the refresh-vs-recompile seconds and the plan-patch bytes.
Byte and mode predictions are structural (read off the same accounting
the executed patch reports), so those assertions always run; wall-clock
predictions are noisy on shared CI runners, so their assertion is
opt-in via ``REPRO_BENCH_ASSERT_TIMING=1`` like ``bench_fleet.py`` —
the JSON records the measured error either way.

The initial :class:`~repro.core.costmodel.Calibration` is fitted from
the repo's recorded ``BENCH_refresh.json`` when present
(:meth:`Calibration.from_bench`) and refined online by the commit loop
itself — the same estimate→observe cycle the serving stack runs.

Runable standalone (writes ``BENCH_costmodel.json`` for the perf
trajectory)::

    PYTHONPATH=src REPRO_BENCH_SCALE=0.02 \
        python benchmarks/bench_cost_model.py --smoke --out BENCH_costmodel.json
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import Calibration, CostModel, IncrementalTrainer
from repro.bench.reporting import report
from repro.datasets import make_binary_classification, make_regression

ROOT = Path(__file__).resolve().parents[1]
ASSERT_TIMING = os.environ.get("REPRO_BENCH_ASSERT_TIMING", "") == "1"

#: The acceptance bar on recorded predicted-vs-actual relative error.
ERROR_BAR = 0.5

N_WARMUP = 8  # online-calibration commits before measurement starts
N_ROUNDS = 24  # measured estimate→remove→commit rounds per workload
SMOKE_WARMUP = 3
SMOKE_ROUNDS = 6

#: (name, model kind, requested samples, features, batch, iterations, seed).
#: The SVD row keeps ``batch < n_params`` so summaries are truncated-SVD
#: factors and every refresh appends correction columns — the width-growth
#: prediction exercised; the dense/linear rows patch flats and moments.
WORKLOADS = (
    ("dense_binary", "binary_logistic", 6000, 12, 64, 50, 5),
    ("svd_binary", "binary_logistic", 3600, 16, 8, 45, 6),
    ("linear", "linear", 4800, 10, 48, 40, 7),
)

_CACHE: dict = {}


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


def _base_calibration() -> Calibration:
    """Seed calibration from the recorded refresh benchmark when present."""
    bench = ROOT / "BENCH_refresh.json"
    if bench.exists():
        return Calibration.from_bench(bench)
    return Calibration()


def _fit(kind, requested, n_features, batch, iterations, seed):
    n = max(200, int(round(requested * _scale())))
    if kind == "linear":
        data = make_regression(n, n_features, noise=0.05, seed=seed)
    else:
        data = make_binary_classification(
            n, n_features, separation=1.0, seed=seed
        )
    trainer = IncrementalTrainer(
        kind,
        learning_rate=0.1,
        regularization=0.01,
        batch_size=batch,
        n_iterations=iterations,
        seed=seed,
        method="priu",
        cost_model=CostModel(_base_calibration()),
    )
    trainer.fit(data.features, data.labels)
    return trainer


def _removal(rng, n_samples, round_index):
    """Steady-state removal sizes (a narrow band around n/80).

    The two-parameter timing model prices the *patch work*, which is
    linear in the touched fraction; at bench scales a fixed per-commit
    overhead dominates far outside the calibrated band, so the run
    measures the regime the calibration actually operates in.  The
    structural predictions (bytes, widths, mode) are exercised across
    the full small-to-bulk range by ``tests/core/test_cost_model.py``.
    """
    size = max(2, n_samples // 80) + round_index % 3
    size = min(size, max(1, n_samples - 8))
    return np.sort(rng.choice(n_samples, size=size, replace=False))


def _decision_errors(decisions):
    """Per-decision relative errors against the executed receipt."""
    byte_errors, timing_errors, agreements = [], [], []
    for decision in decisions:
        predicted = decision["predicted"]
        if predicted is None:
            continue
        agreements.append(predicted["mode"] == decision["actual_mode"])
        actual_bytes = decision["actual_patched_bytes"] or 0
        byte_errors.append(
            abs(predicted["plan_patch_bytes"] - actual_bytes)
            / max(actual_bytes, 1)
        )
        predicted_seconds = (
            predicted["refresh_seconds"]
            if decision["actual_mode"] == "refresh"
            else predicted["recompile_seconds"]
        )
        actual_seconds = decision["actual_seconds"]
        if actual_seconds > 0.0:
            timing_errors.append(
                abs(predicted_seconds - actual_seconds) / actual_seconds
            )
    return byte_errors, timing_errors, agreements


def _run(n_warmup=N_WARMUP, n_rounds=N_ROUNDS):
    key = (n_warmup, n_rounds, _scale())
    if key in _CACHE:
        return _CACHE[key]
    rows, tables = [], {}
    for name, kind, requested, n_features, batch, iterations, seed in WORKLOADS:
        trainer = _fit(kind, requested, n_features, batch, iterations, seed)
        model = trainer.cost_model
        rng = np.random.default_rng(seed)
        # Warm-up commits calibrate the timing coefficients online (the
        # recorded BENCH_refresh rates come from a different scale/host).
        for i in range(n_warmup):
            ids = _removal(rng, trainer.n_samples, i)
            trainer.commit(trainer.remove(ids, method="priu"))
        n_warm = len(model.decisions())
        # Maintenance limits come from the model's own measured ratios —
        # keeping SVD widths bounded also keeps the per-fraction refresh
        # rate stationary, which is what makes it predictable at all.
        policy = model.maintenance_policy()
        for i in range(n_rounds):
            ids = _removal(rng, trainer.n_samples, i)
            # estimate → remove → commit: the commit path re-runs the
            # estimate internally and logs it against the timed receipt.
            trainer.estimate_removal(ids)
            trainer.commit(trainer.remove(ids, method="priu"))
            if policy.due(trainer.maintenance_cost(include_bytes=False)):
                trainer.maintain(policy)
        decisions = model.decisions()[n_warm:]
        byte_errors, timing_errors, agreements = _decision_errors(decisions)
        modes = [d["actual_mode"] for d in decisions]
        rows.append(
            {
                "workload": name,
                "n_decisions": len(decisions),
                "n_refresh": modes.count("refresh"),
                "n_recompile": modes.count("recompile"),
                "mode_agreement": (
                    float(np.mean(agreements)) if agreements else 0.0
                ),
                "plan_patch_bytes_rel_error_median": (
                    float(np.median(byte_errors)) if byte_errors else 0.0
                ),
                "refresh_vs_recompile_rel_error_median": (
                    float(np.median(timing_errors)) if timing_errors else 0.0
                ),
                "refresh_threshold_final": model.refresh_threshold(),
            }
        )
        tables[name] = {
            "calibration": model.calibration.as_dict(),
            "decisions": decisions,
        }
    _CACHE[key] = (rows, tables)
    return rows, tables


def test_estimates_track_executed_commits():
    rows, _ = _run()
    report(
        "cost_model",
        "Cost model predicted-vs-actual (estimate → remove → commit)",
        rows,
    )
    for row in rows:
        # Every measured commit logged a prediction, and the executed
        # refresh-vs-recompile choice is the estimate's own mode — the
        # commit path decides *from* the estimate, so disagreement means
        # the two read different state.
        assert row["n_decisions"] > 0
        assert row["mode_agreement"] == 1.0
        # Byte predictions are structural (shared accounting with the
        # executed patch), so the bar holds on every machine.
        assert row["plan_patch_bytes_rel_error_median"] <= ERROR_BAR
        if ASSERT_TIMING:
            # Wall-clock predictions after online calibration.
            assert row["refresh_vs_recompile_rel_error_median"] <= ERROR_BAR


# --------------------------------------------------------------- standalone
def main(out_path: str = "BENCH_costmodel.json", smoke: bool = False) -> dict:
    """Predicted-vs-actual run recording the decision table (CI artifact)."""
    if smoke:
        rows, tables = _run(n_warmup=SMOKE_WARMUP, n_rounds=SMOKE_ROUNDS)
    else:
        rows, tables = _run()
    byte_medians = [r["plan_patch_bytes_rel_error_median"] for r in rows]
    timing_medians = [r["refresh_vs_recompile_rel_error_median"] for r in rows]
    results = {
        "scale": _scale(),
        "smoke": smoke,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "error_bar": ERROR_BAR,
        "initial_calibration": _base_calibration().as_dict(),
        "rows": rows,
        "workloads": tables,
        "plan_patch_bytes_rel_error": float(max(byte_medians)),
        "refresh_vs_recompile_rel_error": float(max(timing_medians)),
        # The acceptance relation, recorded regardless of assertion mode.
        "within_bar": {
            "plan_patch_bytes": bool(max(byte_medians) <= ERROR_BAR),
            "refresh_vs_recompile": bool(max(timing_medians) <= ERROR_BAR),
        },
    }
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {out_path}")
    for row in rows:
        print(
            f"  {row['workload']:13s} decisions={row['n_decisions']:3d} "
            f"(refresh {row['n_refresh']}, recompile {row['n_recompile']})  "
            f"bytes err {row['plan_patch_bytes_rel_error_median']:.3f}  "
            f"timing err {row['refresh_vs_recompile_rel_error_median']:.3f}  "
            f"threshold {row['refresh_threshold_final']:.3f}"
        )
    return results


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_costmodel.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer warm-up and measurement rounds (CI gate)",
    )
    args = parser.parse_args()
    main(args.out, smoke=args.smoke)
