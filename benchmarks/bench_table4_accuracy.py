"""Table 4: accuracy / distance / similarity, PrIU(-opt) vs INFL at 20%.

The cleaning scenario: 20% of the training samples are corrupted, the initial
model is trained on the dirty set, and the dirty samples are then removed.
"""

import pytest

from repro.bench import accuracy_rows
from repro.bench.reporting import report

from conftest import requires_scale, workload

EXPERIMENTS = [
    "SGEMM (original)",
    "Cov (small)",
    "HIGGS",
    "Heartbeat",
]

DIRTY_RATE = 0.2


@pytest.mark.parametrize("experiment", EXPERIMENTS)
def test_update_accuracy(benchmark, experiment):
    requires_scale(0.03)
    wl = workload(experiment, dirty_rate=DIRTY_RATE)
    rows = benchmark.pedantic(
        lambda: accuracy_rows(wl, wl.dirty_indices), rounds=1
    )
    tag = experiment.replace(" ", "_").replace("(", "").replace(")", "")
    report(f"table4_{tag}", f"Table 4 row — {experiment}", rows)
    by_method = {row["method"]: row for row in rows}
    priu = by_method.get("priu-opt", by_method["priu"])
    # Paper shapes at deletion rate 0.2:
    #  - PrIU(-opt) stays close to BaseL (cosine similarity near 1);
    #  - INFL is clearly worse on both distance and similarity.
    assert priu["similarity"] > 0.95
    if "infl" in by_method:
        infl = by_method["infl"]
        assert infl["distance"] > priu["distance"]
        assert infl["similarity"] < priu["similarity"]


def test_priu_matches_basel_validation_metric():
    requires_scale(0.03)
    """Q3: the headline claim — no accuracy sacrificed."""
    wl = workload("HIGGS", dirty_rate=DIRTY_RATE)
    rows = accuracy_rows(wl, wl.dirty_indices, methods=["priu"])
    row = rows[0]
    assert row["metric"] == pytest.approx(row["reference_metric"], abs=0.02)


def test_sign_flips_are_rare_for_priu():
    requires_scale(0.03)
    """Q4's fine-grained analysis: few/no sign flips vs BaseL."""
    wl = workload("HIGGS", dirty_rate=DIRTY_RATE)
    rows = accuracy_rows(wl, wl.dirty_indices, methods=["priu"])
    n_params = wl.trainer.weights_.size
    assert rows[0]["sign_flips"] <= max(2, int(0.1 * n_params))
