"""Sharded router: throughput scale-out and zero-copy plan residency.

The router acceptance bar (ISSUE 9): on the Fig-4 repeated-removal
workload spread over several models,

* **scale-out** — aggregate ``remove_many`` throughput at 4 shard
  processes reaches ≥ 2.5× the single-process :class:`FleetServer`
  (recorded always; asserted only under ``REPRO_BENCH_ASSERT_TIMING=1``
  — the ratio needs ≥ 4 idle cores, which shared runners don't promise);
* **zero-copy** — every shard maps the same read-only plan archive, so
  the *plan* bytes resident per extra worker process are ≈ 0 (asserted
  < 5% of the plan's size whenever ``/proc/<pid>/smaps`` is available:
  PSS charges each shared page 1/n to its n mappers, so the fleet-wide
  plan residency stays one copy no matter how many shards map it);
* **bit-identity** — a serial mixed-lane contract run answers exactly
  like the single-process fleet (always asserted; serial submission
  keeps both sides in the singleton batch-size class, where the
  engine's answers are composition-independent).

Runable standalone (writes ``BENCH_router.json`` for the perf
trajectory)::

    PYTHONPATH=src REPRO_BENCH_SCALE=0.02 \
        python benchmarks/bench_router.py --out BENCH_router.json
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import AdmissionPolicy, FleetServer, ModelRegistry, ShardRouter
from repro.bench.reporting import report
from repro.eval import pss_bytes

from conftest import workload

EXPERIMENT = "Cov (extended)"
N_SHARDS = 4
N_MODELS = 4
N_SUBSETS = 10  # Fig-4: ten repeated removal subsets per model
DELETION_RATE = 0.001
POLICY = AdmissionPolicy(max_batch=8, max_delay_seconds=0.002)
ASSERT_TIMING = os.environ.get("REPRO_BENCH_ASSERT_TIMING", "") == "1"

_CHECKPOINT_CACHE: dict[str, object] = {}


def _checkpoint(tmp_root: Path):
    """Fit the workload once; save its checkpoint once per process."""
    if "entry" not in _CHECKPOINT_CACHE:
        wl = workload(EXPERIMENT)
        directory = tmp_root / "router-bench-checkpoint"
        wl.trainer.save_checkpoint(directory)
        _CHECKPOINT_CACHE["entry"] = (wl, directory)
    return _CHECKPOINT_CACHE["entry"]


def _traffic(wl):
    """Fig-4 shaped: N_SUBSETS removal sets per model, distinct seeds."""
    return [
        (f"model-{m}", wl.subset(DELETION_RATE, seed=m * N_SUBSETS + i))
        for m in range(N_MODELS)
        for i in range(N_SUBSETS)
    ]


def _register_models(server, wl, directory, router: bool):
    for m in range(N_MODELS):
        model_id = f"model-{m}"
        if router:
            server.register(
                model_id, directory, wl.dataset.features, wl.dataset.labels
            )
        else:
            server.register(
                model_id,
                checkpoint=directory,
                features=wl.dataset.features,
                labels=wl.dataset.labels,
            )


def _burst_throughput(server, traffic):
    """Submit everything at once; requests answered per wall-clock second."""
    started = time.perf_counter()
    futures = [server.submit(model_id, ids) for model_id, ids in traffic]
    outcomes = [future.result(timeout=300) for future in futures]
    elapsed = time.perf_counter() - started
    return len(outcomes) / elapsed, elapsed, outcomes


def _plan_pss_bytes(pid: int, plan_path: Path) -> int | None:
    """One process's resident (PSS) bytes of mappings of the plan archive.

    Parses ``/proc/<pid>/smaps``: each mapping opens with a header line
    carrying the backing path; its ``Pss:`` line charges this process
    1/n of every page n processes share.  Summed over the fleet this is
    the plan's *total* physical residency — one copy, however many
    shards map it.
    """
    name = plan_path.name
    total = 0
    current_is_plan = False
    try:
        with open(f"/proc/{pid}/smaps") as handle:
            for line in handle:
                if "-" in line.split(" ", 1)[0] and ":" not in line.split(" ", 1)[0]:
                    current_is_plan = line.rstrip("\n").endswith(name)
                elif current_is_plan and line.startswith("Pss:"):
                    total += int(line.split()[1]) * 1024
    except OSError:
        return None
    return total


def _worker_pids(router: ShardRouter) -> list[int]:
    description = router.describe()
    return [
        shard["pid"]
        for shard in description["shards"].values()
        if shard["alive"] and shard["pid"] is not None
    ]


def _resident_plan_bytes(tmp_root: Path):
    """Fleet-wide plan residency at 1 vs N_SHARDS workers (module docstring)."""
    wl, directory = _checkpoint(tmp_root)
    plan_path = Path(directory) / "plan.npz"
    plan_bytes = plan_path.stat().st_size
    residency = {}
    pss_totals = {}
    for n_shards in (1, N_SHARDS):
        with ShardRouter(
            n_shards=n_shards, policy=POLICY, prefault_plans=True
        ) as router:
            _register_models(router, wl, directory, router=True)
            # Touch every model once so each home shard loads (and maps)
            # its models, then let the queues drain.
            for m in range(N_MODELS):
                router.submit(f"model-{m}", wl.subset(DELETION_RATE, seed=m))
            router.flush(timeout=120)
            pids = _worker_pids(router)
            samples = [_plan_pss_bytes(pid, plan_path) for pid in pids]
            pss = [pss_bytes(pid) for pid in pids]
            if any(sample is None for sample in samples):
                return None, plan_bytes, {}
            residency[n_shards] = sum(samples)
            pss_totals[n_shards] = (
                None if any(p is None for p in pss) else sum(pss)
            )
    per_extra = (residency[N_SHARDS] - residency[1]) / (N_SHARDS - 1)
    return (
        {
            "plan_pss_total_1_shard": residency[1],
            f"plan_pss_total_{N_SHARDS}_shards": residency[N_SHARDS],
            "resident_plan_bytes_per_extra_process": per_extra,
            "pss_total_1_shard": pss_totals[1],
            f"pss_total_{N_SHARDS}_shards": pss_totals[N_SHARDS],
        },
        plan_bytes,
        residency,
    )


def _bit_identity(tmp_root: Path) -> float:
    """Serial mixed-lane contract: router ≡ single-process fleet, in bits."""
    wl, directory = _checkpoint(tmp_root)
    serial = [
        (f"model-{i % N_MODELS}", wl.subset(DELETION_RATE, seed=100 + i),
         "deadline" if i % 4 == 0 else "bulk")
        for i in range(12)
    ]
    registry = ModelRegistry()
    _register_models(registry, wl, directory, router=False)
    with FleetServer(registry, POLICY, method="priu", n_workers=1) as fleet:
        reference = [
            fleet.submit(m, ids, lane=lane).result(timeout=300)
            for m, ids, lane in serial
        ]
    with ShardRouter(n_shards=N_SHARDS, policy=POLICY) as router:
        _register_models(router, wl, directory, router=True)
        answers = [
            router.submit(m, ids, lane=lane).result(timeout=300)
            for m, ids, lane in serial
        ]
    deviation = 0.0
    for expected, actual in zip(reference, answers):
        if not np.array_equal(expected.weights, actual.weights):
            deviation = max(
                deviation,
                float(np.max(np.abs(expected.weights - actual.weights))),
            )
    return deviation


def _throughputs(tmp_root: Path):
    wl, directory = _checkpoint(tmp_root)
    traffic = _traffic(wl)
    registry = ModelRegistry()
    _register_models(registry, wl, directory, router=False)
    with FleetServer(registry, POLICY, method="priu", n_workers=1) as fleet:
        _burst_throughput(fleet, traffic[: N_MODELS])  # warm loads
        single, single_elapsed, outcomes = _burst_throughput(fleet, traffic)
        assert len(outcomes) == len(traffic)
    with ShardRouter(n_shards=N_SHARDS, policy=POLICY) as router:
        _register_models(router, wl, directory, router=True)
        _burst_throughput(router, traffic[: N_MODELS])  # warm loads
        sharded, sharded_elapsed, outcomes = _burst_throughput(router, traffic)
        assert len(outcomes) == len(traffic)
        router.flush(timeout=120)
        stats = router.stats()
        assert stats.failed == 0
        assert stats.answered == stats.submitted
    return {
        "n_requests": len(traffic),
        "single_process_rps": single,
        "single_process_seconds": single_elapsed,
        f"router_{N_SHARDS}_shards_rps": sharded,
        f"router_{N_SHARDS}_shards_seconds": sharded_elapsed,
        "throughput_ratio": sharded / single,
    }


# ------------------------------------------------------------------ pytest
def test_router_bit_identical_and_scales(tmp_path_factory):
    tmp_root = tmp_path_factory.mktemp("router-bench")
    deviation = _bit_identity(tmp_root)
    assert deviation == 0.0, f"router deviates from fleet by {deviation}"
    throughput = _throughputs(tmp_root)
    report(
        "router_throughput",
        f"Sharded router: {N_SHARDS} shards vs one process",
        [throughput],
    )
    if ASSERT_TIMING:
        assert throughput["throughput_ratio"] >= 2.5


def test_plan_residency_is_shared(tmp_path_factory):
    tmp_root = tmp_path_factory.mktemp("router-bench-memory")
    memory, plan_bytes, _ = _resident_plan_bytes(tmp_root)
    if memory is None:
        import pytest

        pytest.skip("/proc/<pid>/smaps unavailable")
    assert (
        memory["resident_plan_bytes_per_extra_process"] < 0.05 * plan_bytes
    ), memory


# --------------------------------------------------------------- standalone
def main(out_path: str = "BENCH_router.json") -> dict:
    """Smoke-scale run recording the router trajectory (CI artifact)."""
    import tempfile

    from conftest import SCALE

    with tempfile.TemporaryDirectory() as scratch:
        tmp_root = Path(scratch)
        deviation = _bit_identity(tmp_root)
        assert deviation == 0.0, f"router deviates from fleet by {deviation}"
        throughput = _throughputs(tmp_root)
        memory, plan_bytes, _ = _resident_plan_bytes(tmp_root)
        if memory is not None:
            per_extra = memory["resident_plan_bytes_per_extra_process"]
            assert per_extra < 0.05 * plan_bytes, memory
        if ASSERT_TIMING:
            assert throughput["throughput_ratio"] >= 2.5
    results = {
        "scale": SCALE,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "experiment": EXPERIMENT,
        "n_shards": N_SHARDS,
        "n_models": N_MODELS,
        "n_subsets_per_model": N_SUBSETS,
        "deletion_rate": DELETION_RATE,
        "bit_identical_to_single_process": True,
        "max_abs_deviation": deviation,
        "plan_bytes": plan_bytes,
        "throughput": throughput,
        "memory": memory,
        "timing_asserted": ASSERT_TIMING,
    }
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {out_path}")
    print(
        f"  throughput: {throughput['single_process_rps']:.1f} rps (1 proc) "
        f"-> {throughput[f'router_{N_SHARDS}_shards_rps']:.1f} rps "
        f"({N_SHARDS} shards), ratio {throughput['throughput_ratio']:.2f}x"
    )
    if memory is not None:
        print(
            f"  plan residency: {plan_bytes} plan bytes, "
            f"{memory['resident_plan_bytes_per_extra_process']:.0f} "
            "resident plan bytes per extra process"
        )
    return results


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_router.json")
    main(parser.parse_args().out)
