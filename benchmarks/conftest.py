"""Shared benchmark fixtures.

Workloads are fitted once per session (the offline provenance phase is not
part of any measured update).  ``REPRO_BENCH_SCALE`` (default 0.1) shrinks
dataset sizes uniformly; set it to 1.0 for the full paper-shaped run used to
fill EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.bench import CONFIGS, prepare_workload

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))

_CACHE: dict[str, object] = {}


def workload(name: str, dirty_rate: float | None = None):
    """Fit (once) and cache the named workload at the session scale."""
    key = f"{name}|{dirty_rate}"
    if key not in _CACHE:
        config = dataclasses.replace(CONFIGS[name], scale=CONFIGS[name].scale * SCALE)
        _CACHE[key] = prepare_workload(config, dirty_rate=dirty_rate)
    return _CACHE[key]


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE


def requires_scale(minimum: float) -> None:
    """Skip shape assertions that need realistically sized workloads.

    At smoke scales (REPRO_BENCH_SCALE ≲ 0.05) mini-batches get capped at the
    dataset size and the B/m regimes the paper contrasts collapse.
    """
    if SCALE < minimum:
        pytest.skip(
            f"needs REPRO_BENCH_SCALE >= {minimum} (currently {SCALE})"
        )
