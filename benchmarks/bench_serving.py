"""Deletion serving: queued single requests vs the batched call in hand.

The serving acceptance bar (ISSUE 2): a :class:`repro.DeletionServer`
answering N *individually submitted* requests must land within 1.5× of the
wall-clock of one ``remove_many(N)`` call — i.e. the admission queue has to
recover the batched engine's throughput without the caller restructuring
anything.  A concurrency sweep records how per-request cost falls as the
server coalesces larger batches.

Runable standalone (writes ``BENCH_serving.json`` for the perf
trajectory)::

    PYTHONPATH=src REPRO_BENCH_SCALE=0.05 \
        python benchmarks/bench_serving.py --out BENCH_serving.json
"""

import json
import time

import numpy as np
import pytest

from repro.bench import serving_rows
from repro.bench.reporting import report
from repro.serving import AdmissionPolicy, DeletionServer

from conftest import workload

EXPERIMENTS = ["Cov (extended)", "HIGGS (extended)", "Heartbeat (extended)"]
N_REQUESTS = 16


@pytest.mark.parametrize("experiment", EXPERIMENTS)
def test_served_singles_within_budget_of_remove_many(experiment):
    wl = workload(experiment)
    rows, stats = serving_rows(wl, n_requests=N_REQUESTS)
    tag = experiment.split(" ")[0].lower()
    report(
        f"serving_{tag}",
        f"Deletion serving: {N_REQUESTS} queued singles — {experiment}",
        rows,
    )
    served = next(r for r in rows if "DeletionServer" in r["method"])
    # Identical numerics to the one-shot batched call…
    assert served["max_abs_deviation"] < 1e-10
    # …at near-identical cost (acceptance bar: within 1.5x).
    assert served["ratio_vs_remove_many"] < 1.5
    # Everything was answered, in one coalesced batch.
    assert stats["answered"] == N_REQUESTS
    assert stats["batches"] == 1


def test_server_matches_direct_remove_on_fig4_workload():
    wl = workload("HIGGS (extended)")
    subsets = [wl.subset(0.001, seed=s) for s in range(8)]
    with DeletionServer(
        wl.trainer, AdmissionPolicy(max_batch=8), method="priu"
    ) as server:
        outcomes = [f.result(timeout=60) for f in server.submit_many(subsets)]
    for outcome, subset in zip(outcomes, subsets):
        reference = wl.trainer.remove(subset, method="priu-seq")
        assert np.allclose(outcome.weights, reference.weights, atol=1e-10)


def test_per_request_cost_falls_with_concurrency():
    wl = workload("HIGGS (extended)")
    costs = {}
    for k in (1, N_REQUESTS):
        rows, _ = serving_rows(wl, n_requests=k)
        served = next(r for r in rows if "DeletionServer" in r["method"])
        costs[k] = served["seconds_per_request"]
    assert costs[N_REQUESTS] < costs[1]


# --------------------------------------------------------------- standalone
def main(out_path: str = "BENCH_serving.json") -> dict:
    """Smoke-scale run recording the serving perf trajectory (CI artifact)."""
    from conftest import SCALE

    results = {
        "scale": SCALE,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "queued_vs_batched": [],
        "concurrency_sweep": [],
        "server_stats": {},
    }
    for experiment in EXPERIMENTS:
        wl = workload(experiment)
        rows, stats = serving_rows(wl, n_requests=N_REQUESTS)
        results["queued_vs_batched"].extend(rows)
        results["server_stats"][experiment] = stats
        for k in (1, 4, N_REQUESTS):
            sweep_rows, _ = serving_rows(wl, n_requests=k, repeats=2)
            served = next(
                r for r in sweep_rows if "DeletionServer" in r["method"]
            )
            results["concurrency_sweep"].append(served)
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {out_path}")
    for row in results["queued_vs_batched"]:
        print(
            f"  {row['experiment']:24s} {row['method']:44s} "
            f"{row['total_seconds'] * 1000:9.2f} ms "
            f"ratio {row['ratio_vs_remove_many']:.2f}"
        )
    return results


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serving.json")
    main(parser.parse_args().out)
