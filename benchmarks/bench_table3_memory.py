"""Table 3: memory consumption of BaseL vs PrIU vs PrIU-opt."""

import pytest

from repro.bench import memory_row
from repro.bench.reporting import report

from conftest import workload

EXPERIMENTS = [
    "SGEMM (original)",
    "SGEMM (extended)",
    "Cov (small)",
    "Cov (large 1)",
    "Cov (large 2)",
    "HIGGS",
    "Heartbeat",
    "RCV1",
    "cifar10",
]


def test_report_table3(benchmark):
    def build():
        return [memory_row(workload(name)).row() for name in EXPERIMENTS]

    rows = benchmark.pedantic(build, rounds=1)
    report("table3", "Table 3: memory consumption (GB)", rows)
    by_name = {row["dataset"]: row for row in rows}
    # Paper shapes: provenance costs memory; iteration count scales it
    # (Cov large 2 > Cov large 1); sparse RCV1 stays cheap.
    for row in rows:
        assert row["PrIU ratio"] >= 1.0
    assert by_name["Cov (large 2)"]["PrIU (GB)"] > by_name["Cov (large 1)"]["PrIU (GB)"]
    # Sparse RCV1 keeps only per-iteration coefficients: in absolute terms
    # it is the cheapest provenance store of all the workloads.  (The
    # *ratio* to BaseL looks big only because the sparse data itself is
    # tiny at laptop scale.)
    assert by_name["RCV1"]["PrIU (GB)"] == min(r["PrIU (GB)"] for r in rows)


def test_provenance_memory_scales_with_iterations():
    one = workload("Cov (large 1)")
    two = workload("Cov (large 2)")
    assert two.trainer.store.nbytes() > one.trainer.store.nbytes()
